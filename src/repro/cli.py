"""Command-line interface: ``elsa-repro`` (or ``python -m repro``).

Subcommands mirror a real deployment workflow:

* ``generate`` — build a synthetic scenario; write the log as text and the
  ground truth as JSON;
* ``fit``      — train the offline phase on a log file; pickle the model;
* ``predict``  — run the online phase over a window of a log file;
* ``evaluate`` — score a predictions file against a ground-truth file;
* ``report``   — everything end-to-end with a human-readable summary.

All files are plain text/JSON except the model, which is a pickle (the
trained model holds numpy arrays and nested dataclasses).
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro import obs
from repro.core.elsa import ELSA
from repro.datasets.scenarios import bluegene_scenario, mercury_scenario
from repro.prediction.engine import Prediction
from repro.prediction.evaluation import evaluate_predictions
from repro.simulation.trace import FaultEvent, read_log, write_log


# ---------------------------------------------------------------------------
# console output
# ---------------------------------------------------------------------------

#: set by ``--quiet``; collected by :func:`set_quiet` so tests can toggle.
_quiet = False


def set_quiet(quiet: bool) -> None:
    """Silence (or restore) the human-readable console stream."""
    global _quiet
    _quiet = bool(quiet)


def _emit(*parts: object, **kwargs) -> None:
    """Console output funnel: every subcommand prints through here.

    One choke point means ``--quiet`` works uniformly and future
    machine-readable modes (JSON lines, ...) need only one switch.
    Default behaviour is byte-identical to ``print``.
    """
    if not _quiet:
        try:
            print(*parts, **kwargs)
        except BrokenPipeError:
            # Reader (e.g. ``| head``) went away: stop quietly with the
            # conventional 128+SIGPIPE status instead of a traceback.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            raise SystemExit(141)


def _json_default(value):
    """Serialize numpy scalars and other stragglers in obs dumps."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def _dump_observability(path: str) -> None:
    """Write the metrics registry + span tree collected by this run."""
    state = obs.export_state()
    Path(path).write_text(
        json.dumps(state, indent=1, default=_json_default) + "\n"
    )
    _emit(f"observability dump written to {path}")


# ---------------------------------------------------------------------------
# serialization helpers
# ---------------------------------------------------------------------------

def _fault_to_dict(f: FaultEvent) -> dict:
    return {
        "fault_id": f.fault_id,
        "fault_type": f.fault_type,
        "category": f.category,
        "onset_time": f.onset_time,
        "fail_time": f.fail_time,
        "locations": list(f.locations),
    }


def _fault_from_dict(d: dict) -> FaultEvent:
    return FaultEvent(
        fault_id=int(d["fault_id"]),
        fault_type=str(d["fault_type"]),
        category=str(d["category"]),
        onset_time=float(d["onset_time"]),
        fail_time=float(d["fail_time"]),
        locations=tuple(d["locations"]),
    )


def _prediction_to_dict(p: Prediction) -> dict:
    return p.to_dict()


def _prediction_from_dict(d: dict) -> Prediction:
    return Prediction.from_dict(d)


def load_ground_truth(path: Path) -> List[FaultEvent]:
    """Read a ground-truth JSON file written by ``generate``."""
    data = json.loads(path.read_text())
    return [_fault_from_dict(d) for d in data["faults"]]


def load_predictions(path: Path) -> List[Prediction]:
    """Read a predictions JSON file written by ``predict``."""
    data = json.loads(path.read_text())
    return [_prediction_from_dict(d) for d in data["predictions"]]


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def cmd_generate(args: argparse.Namespace) -> int:
    """``generate``: synthesize a scenario to log + truth files."""
    builder = bluegene_scenario if args.system == "bluegene" else mercury_scenario
    scenario = builder(duration_days=args.days, seed=args.seed)
    log_path = Path(args.log)
    with log_path.open("w") as fh:
        n = write_log(scenario.records, fh)
    truth = {
        "system": args.system,
        "duration_days": args.days,
        "seed": args.seed,
        "train_end": scenario.train_end,
        "t_end": scenario.t_end,
        "faults": [_fault_to_dict(f) for f in scenario.ground_truth],
    }
    Path(args.truth).write_text(json.dumps(truth, indent=1))
    _emit(f"wrote {n} records to {args.log}")
    _emit(f"wrote {len(scenario.ground_truth)} faults to {args.truth}")
    _emit(f"suggested training split: t_train_end={scenario.train_end:.0f}")
    return 0


def _machine_for(system: str):
    from repro.simulation.topology import (
        build_bluegene_machine,
        build_cluster_machine,
    )

    if system == "bluegene":
        return build_bluegene_machine()
    return build_cluster_machine()


def _read_records(path: str, fmt: str, lenient: bool = False):
    """Read a log file in the selected format.

    ``lenient`` skips malformed lines (counted on the
    ``ingest.malformed_lines`` obs counter) instead of raising.
    """
    if fmt == "bgl":
        from repro.simulation.bgl_format import read_bgl_log

        with Path(path).open() as fh:
            return read_bgl_log(fh, skip_malformed=lenient)
    with Path(path).open() as fh:
        return read_log(fh, lenient=lenient)


#: exit status for a run that finished but dropped/repaired input or
#: tripped a component breaker along the way (distinct from a crash).
EXIT_DEGRADED = 3


def _apply_resilience(elsa: ELSA, args: argparse.Namespace) -> bool:
    """Turn on the hardened-ingestion path when ``--lenient`` was given."""
    lenient = bool(getattr(args, "lenient", False))
    if lenient and elsa.config.resilience is None:
        from repro.resilience.config import ResilienceConfig

        elsa.config.resilience = ResilienceConfig()
    return lenient


def _degraded_exit(elsa: ELSA, rc: int = 0) -> int:
    """Map a degraded (but completed) run to :data:`EXIT_DEGRADED`.

    Degradation = the sanitizer dropped/repaired records, or the lenient
    reader skipped malformed lines (the ``ingest.malformed_lines``
    counter covers this run — ``main`` resets the registry first).
    """
    if rc != 0:
        return rc
    stats = dict(elsa.ingest_stats or {})
    skipped = int(obs.counter("ingest.malformed_lines").value)
    if skipped:
        stats["malformed_lines"] = skipped
    if elsa.degraded or skipped:
        detail = ", ".join(
            f"{k}={v}" for k, v in sorted(stats.items()) if v
        )
        _emit(f"run completed in DEGRADED mode ({detail})")
        return EXIT_DEGRADED
    return rc


def cmd_fit(args: argparse.Namespace) -> int:
    """``fit``: offline phase on a log file; pickles the pipeline."""
    elsa = ELSA(_machine_for(args.system))
    lenient = _apply_resilience(elsa, args)
    try:
        records = _read_records(args.log, args.format, lenient=lenient)
    except ValueError as exc:
        print(f"error: {exc} (re-run with --lenient to skip bad lines)",
              file=sys.stderr)
        return 1
    model = elsa.fit(records, t_train_end=args.train_end)
    with Path(args.model).open("wb") as fh:
        pickle.dump(elsa, fh)
    _emit(
        f"trained on {sum(1 for r in records if r.timestamp < args.train_end)} "
        f"records: {model.n_types} event types, "
        f"{len(model.predictive_chains)} predictive chains "
        f"({len(model.info_chains)} informational discarded)"
    )
    for chain in model.predictive_chains:
        names = " -> ".join(
            model.event_name(t)[:36] for t in chain.event_types
        )
        _emit(f"  conf {chain.confidence:4.0%} span {chain.span:4d}u  {names}")
    _emit(f"model saved to {args.model}")
    return _degraded_exit(elsa)


def _load_truth_window(
    path: str, t_start: float, t_end: float
) -> List[FaultEvent]:
    """Ground-truth faults failing inside the predict window."""
    faults = load_ground_truth(Path(path))
    return [f for f in faults if t_start <= f.fail_time < t_end]


def _start_telemetry(args: argparse.Namespace):
    """Start the ``--listen`` server (or return ``None``)."""
    spec = getattr(args, "listen", None)
    if not spec:
        return None
    from repro.obs.live import TelemetryServer, parse_listen

    host, port = parse_listen(spec)
    server = TelemetryServer(host=host, port=port).start()
    _emit(f"telemetry listening on {server.url}")
    return server


def _stop_telemetry(server, args: argparse.Namespace) -> None:
    """Linger if requested, then shut the ``--listen`` server down."""
    if server is None:
        return
    linger = float(getattr(args, "linger", 0.0) or 0.0)
    if linger > 0:
        _emit(f"telemetry lingering for {linger:g}s (ctrl-c to stop)")
        try:
            time.sleep(linger)
        except KeyboardInterrupt:
            pass
    server.stop()


def cmd_predict(args: argparse.Namespace) -> int:
    """``predict``: online phase over a window of a log file.

    With ``--checkpoint``/``--checkpoint-every`` the resumable streaming
    engine runs instead of the batch engine (same output, see
    :mod:`repro.resilience.checkpoint`); ``--resume-from`` continues a
    killed run from its checkpoint file.  ``--listen`` serves the
    /metrics, /health and /state telemetry endpoints for the duration
    of the run (plus ``--linger`` seconds); ``--truth`` scores emitted
    predictions in-stream on the online scoreboard; ``--provenance-out``
    dumps each prediction's audit record as JSON lines.

    ``--self-heal`` (implied by ``--model-store``) runs the lifecycle
    loop instead: drift or recall degradation triggers a shadow retrain,
    a validation gate compares candidate and incumbent on a held-out
    slice, and the winner is hot-swapped into the stream (see
    :mod:`repro.lifecycle.healing`).  With ``--model-store`` every
    accepted version is pickled, so ``--resume-from`` restores the
    swapped model rather than the seed.
    """
    with Path(args.model).open("rb") as fh:
        elsa: ELSA = pickle.load(fh)
    elsa.set_fast_path(getattr(args, "fast_path", True))
    lenient = _apply_resilience(elsa, args)
    try:
        records = _read_records(args.log, args.format, lenient=lenient)
    except ValueError as exc:
        print(f"error: {exc} (re-run with --lenient to skip bad lines)",
              file=sys.stderr)
        return 1
    t_end = args.t_end if args.t_end is not None else (
        max(r.timestamp for r in records) + 1.0
    )
    truth_path = getattr(args, "truth", None)
    faults = (
        _load_truth_window(truth_path, args.t_start, t_end)
        if truth_path else None
    )
    scoreboard = None
    server = _start_telemetry(args)
    profiler = None
    if getattr(args, "profile", False):
        profiler = obs.get_profiler()
        profiler.start()
        _emit(f"stage profiler sampling every {profiler.interval * 1000:g}ms")
    try:
        resume_from = getattr(args, "resume_from", None)
        ckpt_path = getattr(args, "checkpoint", None) or resume_from
        ckpt_every = getattr(args, "checkpoint_every", None)
        batch_size = getattr(args, "batch_size", None)
        model_store = getattr(args, "model_store", None)
        self_heal = getattr(args, "self_heal", False) or bool(model_store)
        if self_heal:
            from repro.lifecycle import SelfHealingRun
            from repro.resilience.checkpoint import load_checkpoint

            every = ckpt_every or (4096 if ckpt_path else None)
            if resume_from and Path(resume_from).exists():
                run = SelfHealingRun.resume(
                    elsa, load_checkpoint(resume_from),
                    faults=faults or (), store_dir=model_store,
                    checkpoint_path=ckpt_path, checkpoint_every=every,
                    batch_size=batch_size,
                )
                _emit(
                    f"resumed from {resume_from} at record "
                    f"{run.predictor.n_records_fed} on model "
                    f"v{run.manager.active_version}"
                )
            else:
                run = SelfHealingRun(
                    elsa, args.t_start, t_end,
                    faults=faults or (), store_dir=model_store,
                    checkpoint_path=ckpt_path, checkpoint_every=every,
                    batch_size=batch_size,
                )
            predictor = run.predictor
            scoreboard = run.scoreboard
            predictions = run.run(elsa._sanitize(records))
            _emit(run.summary())
            tripped = predictor.breakers.tripped()
            if tripped:
                _emit(f"circuit breakers tripped during run: {tripped}")
        elif resume_from or ckpt_path or ckpt_every or batch_size:
            from repro.resilience.checkpoint import (
                ResumableRun,
                load_checkpoint,
            )

            # --batch-size alone selects the streaming engine without
            # enabling checkpoints (no path to write them to)
            every = ckpt_every or (4096 if ckpt_path else None)
            if resume_from and Path(resume_from).exists():
                run = ResumableRun.resume(
                    elsa, load_checkpoint(resume_from),
                    checkpoint_path=ckpt_path, checkpoint_every=every,
                    batch_size=batch_size,
                )
                _emit(
                    f"resumed from {resume_from} at record "
                    f"{run.predictor.n_records_fed}"
                )
            else:
                run = ResumableRun(
                    elsa, args.t_start, t_end,
                    checkpoint_path=ckpt_path, checkpoint_every=every,
                    batch_size=batch_size,
                )
            predictor = run.predictor
            if faults is not None:
                from repro.prediction.scoreboard import OnlineScoreboard

                scoreboard = OnlineScoreboard(faults=faults)
                predictor.attach_scoreboard(scoreboard)
            if server is not None:
                predictor.attach_drift_detector()
            # ``ResumableRun`` bypasses ``make_stream``, so apply the
            # hardened-ingestion gate here for parity with the batch
            # path.
            predictions = run.run(elsa._sanitize(records))
            tripped = predictor.breakers.tripped()
            if tripped:
                _emit(f"circuit breakers tripped during run: {tripped}")
        else:
            # explicit stream + predictor (rather than ``elsa.predict``)
            # so the flight recorder stays reachable afterwards
            stream = elsa.make_stream(records, args.t_start, t_end)
            predictor = elsa.hybrid_predictor()
            predictions = predictor.run(stream)
            tripped = []
            if faults is not None:
                from repro.prediction.scoreboard import OnlineScoreboard

                scoreboard = OnlineScoreboard(faults=faults)
                for pred in predictions:
                    scoreboard.record_prediction(pred)
                scoreboard.advance(t_end)
                scoreboard.finalize()
        out = {"predictions": [_prediction_to_dict(p) for p in predictions]}
        Path(args.out).write_text(json.dumps(out, indent=1))
        _emit(f"{len(predictions)} predictions written to {args.out}")
        if scoreboard is not None:
            _emit(scoreboard.summary())
        prov_out = getattr(args, "provenance_out", None)
        if prov_out:
            with Path(prov_out).open("w") as fh:
                n = predictor.flight_recorder.dump_jsonl(fh)
            dropped = predictor.flight_recorder.dropped
            note = f" ({dropped} older dropped from ring)" if dropped else ""
            _emit(f"{n} provenance records written to {prov_out}{note}")
    finally:
        if profiler is not None:
            profiler.stop()
        _stop_telemetry(server, args)
    rc = _degraded_exit(elsa)
    if rc == 0 and tripped:
        rc = EXIT_DEGRADED
    return rc


def cmd_evaluate(args: argparse.Namespace) -> int:
    """``evaluate``: score a predictions file against ground truth."""
    predictions = load_predictions(Path(args.predictions))
    truth = json.loads(Path(args.truth).read_text())
    faults = [_fault_from_dict(d) for d in truth["faults"]]
    window = [
        f for f in faults
        if args.t_start <= f.fail_time
        and (args.t_end is None or f.fail_time < args.t_end)
    ]
    result = evaluate_predictions(predictions, window)
    _emit(result.summary())
    for cat, stats in sorted(result.per_category.items()):
        _emit(f"  {cat:<12} {stats.n_predicted:4d}/{stats.n_faults:<4d} "
              f"({stats.recall:.0%})")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``report``: end-to-end synthetic run with a summary."""
    builder = bluegene_scenario if args.system == "bluegene" else mercury_scenario
    scenario = builder(duration_days=args.days, seed=args.seed)
    elsa = ELSA(scenario.machine)
    model = elsa.fit(scenario.records, t_train_end=scenario.train_end)
    predictions = elsa.predict(
        scenario.records, scenario.train_end, scenario.t_end
    )
    result = evaluate_predictions(predictions, scenario.test_faults)
    _emit(f"system      : {scenario.name}")
    _emit(f"records     : {len(scenario.records)}")
    _emit(f"event types : {model.n_types}")
    _emit(f"chains      : {len(model.chains)} "
          f"({len(model.predictive_chains)} predictive)")
    _emit(f"precision   : {result.precision:.1%}")
    _emit(f"recall      : {result.recall:.1%}")
    for cat, stats in sorted(result.per_category.items()):
        _emit(f"  {cat:<12} {stats.n_predicted:4d}/{stats.n_faults:<4d} "
              f"({stats.recall:.0%})")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """``fleet``: multi-tenant supervised serving over one stream.

    Generates a synthetic scenario, fits the offline phase once, and
    serves the test window through a :class:`repro.fleet.Fleet`: one
    shard per tenant (``--tenants N`` hash-buckets node locations;
    ``--rack-sharding`` keys by rack-midplane subtree instead), bounded
    per-tenant queues, and the shard supervisor's crash-restart /
    backoff / quarantine policy.  ``--kill TENANT:AFTER`` injects a
    chaos kill once that shard's cursor crosses ``AFTER`` records — the
    CLI face of the fleet chaos matrix.  ``--listen`` exposes
    ``/fleet`` (plus the usual endpoints) while the fleet runs.

    Exit status: 0 healthy, :data:`EXIT_DEGRADED` when any shard ended
    quarantined or records were dead-lettered/shed.
    """
    import tempfile

    from repro.fleet import (
        Fleet, FleetPolicy, ShardState, hashed_tenant_key,
        rack_subtree_key,
    )

    builder = (
        bluegene_scenario if args.system == "bluegene" else mercury_scenario
    )
    scenario = builder(duration_days=args.days, seed=args.seed)
    elsa = ELSA(scenario.machine)
    elsa.fit(scenario.records, t_train_end=scenario.train_end)
    if args.model_out:
        # the pristine fitted pipeline (shards deep-copy it, so this
        # is exactly what `postmortem --replay` needs later)
        with Path(args.model_out).open("wb") as fh:
            pickle.dump(elsa, fh)
        _emit(f"model saved to {args.model_out}")
    test = [
        r for r in scenario.records if r.timestamp >= scenario.train_end
    ]
    if args.rack_sharding:
        key = rack_subtree_key(depth=2)
        tenants = sorted({key(r.location) for r in test})
    else:
        key = hashed_tenant_key(args.tenants)
        tenants = sorted({key(r.location) for r in test})
    policy = FleetPolicy(
        queue_capacity=args.queue_capacity,
        chunk_records=args.chunk_records,
        checkpoint_every=args.checkpoint_every,
    )
    server = _start_telemetry(args)
    ckpt_dir = args.checkpoint_dir
    tmp = None
    if ckpt_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="elsa-fleet-")
        ckpt_dir = tmp.name
    try:
        fleet = Fleet.build(
            elsa, tenants, scenario.train_end, scenario.t_end, key,
            ckpt_dir, policy=policy,
            faults=list(scenario.ground_truth),
            self_heal=args.self_heal,
        )
        if args.incident_dir:
            fleet.bind_forensics(args.incident_dir)
            _emit(f"incident bundles -> {args.incident_dir}")
        kills = []
        for spec in args.kill or ():
            tenant, _, after = spec.partition(":")
            if tenant not in fleet.shards:
                print(f"error: unknown tenant {tenant!r} "
                      f"(tenants: {', '.join(tenants[:8])}...)",
                      file=sys.stderr)
                return 2
            kills.append((tenant, int(after) if after else 0))
        for tenant, after in kills:
            fleet.kill(tenant, after_records=after)
        predictions = fleet.run(test)
        state = fleet.state()
        _emit(f"system      : {scenario.name}")
        _emit(f"tenants     : {len(tenants)} "
              f"({'rack subtree' if args.rack_sharding else 'hashed'})")
        _emit(f"records     : {len(test)} routed, "
              f"{state['router']['shed']} shed, "
              f"{state['router']['dead_lettered']} dead-lettered")
        n_preds = sum(len(p) for p in predictions.values())
        _emit(f"predictions : {n_preds}")
        quarantined = []
        restarts = 0
        for tenant in tenants:
            info = state["shards"][tenant]
            restarts += info["restarts"]
            if info["state"] == ShardState.QUARANTINED.value:
                quarantined.append(tenant)
        _emit(f"supervision : {restarts} restarts, "
              f"{len(quarantined)} quarantined"
              + (f" ({', '.join(quarantined)})" if quarantined else ""))
        if args.incident_dir:
            inc = obs.get_incident_manager().state()
            _emit(f"incidents   : {inc['total']} captured, "
                  f"{inc['failed']} failed, {inc['skipped']} skipped"
                  + (f" (last: {inc['last_bundle']})"
                     if inc["last_bundle"] else ""))
        if args.verbose:
            for tenant in tenants:
                info = state["shards"][tenant]
                _emit(f"  {tenant:<10} {info['state']:<11}"
                      f" fed={info['records_fed']:<7}"
                      f" preds={info['predictions'] or 0:<4}"
                      f" restarts={info['restarts']}"
                      f" shed={info['shed']}")
        if args.out:
            doc = {
                "tenants": {
                    t: [p.to_dict() for p in predictions[t]]
                    for t in tenants
                },
                "fleet": state,
            }
            Path(args.out).write_text(json.dumps(doc, default=str) + "\n")
            _emit(f"predictions written to {args.out}")
        degraded = bool(
            quarantined
            or state["router"]["shed"]
            or state["router"]["dead_lettered"]
        )
        return EXIT_DEGRADED if degraded else 0
    finally:
        # linger (if any) happens before close: /fleet and the
        # dashboard's fleet view stay live for post-run scrapes
        _stop_telemetry(server, args)
        from repro.fleet import get_active_fleet

        if get_active_fleet() is not None:
            get_active_fleet().close()
        if tmp is not None:
            tmp.cleanup()


def _scenario_test_records(args: argparse.Namespace):
    """(scenario, test records, tenant key, tenants) for serve/feed.

    Both sides of the wire derive the stream from the same
    ``--system/--days/--seed`` so the network run can be compared
    byte-for-byte against the in-process ``fleet`` run — reading the
    written log file instead would round timestamps through the text
    format's ``%.3f`` and break the identity.
    """
    from repro.fleet import hashed_tenant_key, rack_subtree_key

    builder = (
        bluegene_scenario if args.system == "bluegene" else mercury_scenario
    )
    scenario = builder(duration_days=args.days, seed=args.seed)
    test = [
        r for r in scenario.records if r.timestamp >= scenario.train_end
    ]
    if getattr(args, "rack_sharding", False):
        key = rack_subtree_key(depth=2)
    else:
        key = hashed_tenant_key(args.tenants)
    tenants = sorted({key(r.location) for r in test})
    return scenario, test, key, tenants


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: the network ingest frontend over a fleet.

    Fits the offline phase from the scenario seed, builds one shard
    per tenant, and serves the ingest API (``POST /ingest/<tenant>``
    NDJSON batches, ``GET /predictions/<tenant>``, ``/tenants``,
    ``POST /seal/<tenant>``) plus every telemetry endpoint on
    ``--listen``, pumping the fleet from the main loop until SIGTERM/
    SIGINT — then the graceful drain: admission stops (503s), queues
    pump dry, every tenant checkpoints, the idempotency ledger
    persists.  ``--resume`` adopts the checkpoints + ledger a previous
    incarnation left in ``--checkpoint-dir``.

    Exit status: 0 clean drain, :data:`EXIT_DEGRADED` when any tenant
    ended quarantined or records were shed/dead-lettered.
    """
    import signal
    import tempfile
    import threading

    from repro.fleet import Fleet, FleetPolicy
    from repro.fleet.ingest import IngestAPI, IngestConfig, IngestServer
    from repro.obs.live import parse_listen

    scenario, test, key, tenants = _scenario_test_records(args)
    elsa = ELSA(scenario.machine)
    elsa.fit(scenario.records, t_train_end=scenario.train_end)

    policy = FleetPolicy(
        queue_capacity=args.queue_capacity,
        chunk_records=args.chunk_records,
        checkpoint_every=args.checkpoint_every,
    )
    ckpt_dir = args.checkpoint_dir
    tmp = None
    if ckpt_dir is None:
        if args.resume:
            print("error: --resume needs --checkpoint-dir",
                  file=sys.stderr)
            return 2
        tmp = tempfile.TemporaryDirectory(prefix="elsa-serve-")
        ckpt_dir = tmp.name
    host, port = parse_listen(args.listen)
    stop = threading.Event()

    def _graceful(signum, frame):
        stop.set()

    old_term = signal.signal(signal.SIGTERM, _graceful)
    old_int = signal.signal(signal.SIGINT, _graceful)
    fleet = None
    server = None
    try:
        fleet = Fleet.build(
            elsa, tenants, scenario.train_end, scenario.t_end, key,
            ckpt_dir, policy=policy,
            faults=list(scenario.ground_truth),
            self_heal=args.self_heal,
            resume=args.resume,
        )
        api = IngestAPI(
            fleet,
            config=IngestConfig(
                max_batch_records=args.max_batch_records,
                admission_rate=args.admission_rate,
                admission_capacity=max(
                    args.admission_rate, 2.0 * args.max_batch_records
                ),
            ),
            ledger_path=Path(ckpt_dir) / "ingest-ledger.json",
            resume=args.resume,
        )
        server = IngestServer(
            api, host=host, port=port,
            request_timeout_seconds=args.request_timeout,
        ).start()
        resumed = sum(
            1 for s in fleet.shards.values() if s.records_fed > 0
        )
        _emit(f"ingest listening on {server.url} "
              f"({len(tenants)} tenants, window "
              f"[{scenario.train_end:.0f}, {scenario.t_end:.0f})"
              + (f", {resumed} resumed" if args.resume else "") + ")")
        deadline = (
            None if args.max_runtime is None
            else time.monotonic() + args.max_runtime
        )
        while not stop.is_set():
            api.pump_once()
            if deadline is not None and time.monotonic() >= deadline:
                _emit("max runtime reached; draining")
                break
            stop.wait(args.pump_interval)
        summary = api.drain()
        _emit(f"drained     : {summary['routed']} routed, "
              f"{summary['checkpointed']} tenants checkpointed, "
              f"{summary['shed']} shed, "
              f"{summary['dead_lettered']} dead-lettered, "
              f"{len(summary['quarantined'])} quarantined")
        return EXIT_DEGRADED if summary["degraded"] else 0
    finally:
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)
        if server is not None:
            server.stop()
        if fleet is not None:
            fleet.close()
        if tmp is not None:
            tmp.cleanup()


def cmd_feed(args: argparse.Namespace) -> int:
    """``feed``: drive a ``serve`` frontend through the ingest client.

    Derives the same test stream as the server (``--system/--days/
    --seed``) or reads ``--log``, partitions it per tenant with the
    same keying, and delivers it in idempotent sequenced batches with
    bounded retries — optionally through the wire-chaos transport
    (``--chaos-*`` flags) that drops, duplicates, reorders, truncates
    and stalls requests.  ``--seal`` closes every touched tenant and
    ``--predictions-out`` saves the returned predictions in the same
    ``{"tenants": {...}}`` shape ``fleet --out`` writes, so the two
    can be diffed byte-for-byte.
    """
    import urllib.parse as _url

    from repro.fleet.client import (
        ClientError, HTTPTransport, IngestClient, IngestGaveUp,
    )

    split = _url.urlsplit(args.url)
    if not split.hostname or not split.port:
        print(f"error: --url wants http://HOST:PORT, got {args.url!r}",
              file=sys.stderr)
        return 2
    if args.log:
        records = _read_records(args.log, "text")
        if args.t_start is not None:
            records = [r for r in records if r.timestamp >= args.t_start]
        if args.t_end is not None:
            records = [r for r in records if r.timestamp < args.t_end]
        from repro.fleet import hashed_tenant_key, rack_subtree_key

        key = (rack_subtree_key(depth=2) if args.rack_sharding
               else hashed_tenant_key(args.tenants))
    else:
        _, records, key, _ = _scenario_test_records(args)

    transport = HTTPTransport(
        split.hostname, split.port, timeout=args.timeout
    )
    chaos_rates = (
        args.chaos_drop, args.chaos_drop_response, args.chaos_dup,
        args.chaos_reorder, args.chaos_truncate, args.chaos_stall,
    )
    if any(rate > 0 for rate in chaos_rates):
        from repro.resilience.wire import ChaosTransport

        transport = ChaosTransport(
            transport,
            drop_request_rate=args.chaos_drop,
            drop_response_rate=args.chaos_drop_response,
            duplicate_rate=args.chaos_dup,
            reorder_rate=args.chaos_reorder,
            truncate_rate=args.chaos_truncate,
            stall_rate=args.chaos_stall,
            stall_seconds=args.chaos_stall_seconds,
            seed=args.chaos_seed,
        )
        _emit(f"wire chaos armed (seed {args.chaos_seed}): "
              f"drop={args.chaos_drop:g} "
              f"drop_resp={args.chaos_drop_response:g} "
              f"dup={args.chaos_dup:g} reorder={args.chaos_reorder:g} "
              f"truncate={args.chaos_truncate:g} "
              f"stall={args.chaos_stall:g}")
    client = IngestClient(
        transport,
        stream_id=args.stream_id,
        max_attempts=args.max_attempts,
        seed=args.seed,
    )
    touched = sorted({key(r.location) for r in records})
    try:
        stats = client.feed(records, key, batch_size=args.batch_size)
        payloads = {}
        if args.seal or args.predictions_out:
            for tenant in touched:
                payloads[tenant] = client.seal(tenant)
    except (ClientError, IngestGaveUp) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _emit(f"fed         : {stats['records']} records in "
          f"{stats['batches']} batches to {len(touched)} tenants")
    _emit(f"resilience  : {stats['retries']} retries, "
          f"{stats['duplicates']} duplicate acks, "
          f"{stats['throttled']} throttled, "
          f"{stats['resyncs']} resyncs")
    chaos_injected = getattr(transport, "injected", None)
    if chaos_injected:
        _emit("chaos       : " + ", ".join(
            f"{kind}={n}" for kind, n in sorted(chaos_injected.items())
        ))
    if payloads:
        n_preds = sum(p["count"] for p in payloads.values())
        _emit(f"predictions : {n_preds} across "
              f"{len(payloads)} sealed tenants")
    if args.predictions_out:
        doc = {
            "tenants": {
                t: payloads[t]["predictions"] for t in sorted(payloads)
            },
        }
        Path(args.predictions_out).write_text(
            json.dumps(doc, default=str) + "\n"
        )
        _emit(f"predictions written to {args.predictions_out}")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """``reproduce``: the headline paper tables as a markdown report."""
    from repro.reporting import full_reproduction_report

    report = full_reproduction_report(duration_days=args.days,
                                      seed=args.seed)
    if args.out:
        Path(args.out).write_text(report + "\n")
        _emit(f"report written to {args.out}")
    else:
        _emit(report)
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """``monitor``: serve a ``--metrics-out`` dump over HTTP.

    Re-reads the file on every request, so pointing it at a dump that a
    concurrent run keeps rewriting gives a poor-man's live dashboard.
    """
    from repro.obs.live import TelemetryServer, parse_listen

    path = Path(args.metrics)
    try:
        json.loads(path.read_text())
    except OSError as exc:
        print(f"error: cannot read metrics dump: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {args.metrics} is not a metrics dump: {exc}",
              file=sys.stderr)
        return 1

    def state_fn() -> dict:
        return json.loads(path.read_text())

    try:
        host, port = parse_listen(args.listen)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = TelemetryServer(host=host, port=port, state_fn=state_fn)
    server.start()
    _emit(f"telemetry listening on {server.url} (serving {args.metrics})")
    try:
        if args.linger is not None:
            time.sleep(args.linger)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``explain``: render ``--provenance-out`` audit records."""
    from repro.obs.provenance import load_jsonl, render_record

    try:
        records = load_jsonl(args.provenance)
    except OSError as exc:
        print(f"error: cannot read provenance file: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not records:
        _emit("no provenance records")
        return 0
    if args.index is not None:
        if not 0 <= args.index < len(records):
            print(
                f"error: --index {args.index} out of range "
                f"(0..{len(records) - 1})",
                file=sys.stderr,
            )
            return 2
        chosen = [(args.index, records[args.index])]
    else:
        chosen = list(enumerate(records))
    event_name = None
    if getattr(args, "model", None):
        with Path(args.model).open("rb") as fh:
            elsa: ELSA = pickle.load(fh)
        if elsa.model is not None:
            event_name = elsa.model.event_name
    for i, rec in chosen:
        _emit(render_record(rec, index=i, event_name=event_name))
    return 0


def _postmortem_timeline(bundle: dict) -> List[str]:
    """Merge a bundle's evidence into one causally-ordered timeline.

    Supervisor events, history annotations and SLO alert transitions
    all carry stream timestamps; provenance exemplars anchor the trace
    ids.  Sorting the union by time reconstructs the incident story.
    """
    events: List[tuple] = []
    for ev in bundle.get("supervisor_events", []):
        detail = ev.get("detail", {})
        extra = ", ".join(
            f"{k}={v}" for k, v in sorted(detail.items())
        )
        events.append((
            float(ev.get("t", 0.0)), "supervisor",
            f"{ev.get('kind', '?')} tenant={ev.get('tenant', '?')}"
            + (f" ({extra})" if extra else ""),
        ))
    for ev in (bundle.get("history") or {}).get("events", []):
        if isinstance(ev, (list, tuple)) and len(ev) >= 2:
            t, kind = ev[0], ev[1]
            detail = ev[2] if len(ev) > 2 else {}
        elif isinstance(ev, dict):
            t, kind = ev.get("t", 0.0), ev.get("kind", "?")
            detail = ev.get("detail", {})
        else:
            continue
        extra = ", ".join(
            f"{k}={v}" for k, v in sorted(dict(detail or {}).items())
        )
        events.append((
            float(t), "annotation",
            str(kind) + (f" ({extra})" if extra else ""),
        ))
    for slo in (bundle.get("alerts") or {}).get("slos", []):
        for tr in slo.get("transitions", []):
            events.append((
                float(tr.get("t", 0.0)), "slo",
                f"{slo.get('name', '?')}: "
                f"{tr.get('from', '?')} -> {tr.get('to', '?')}",
            ))
    for prov in bundle.get("provenance", [])[-8:]:
        t = prov.get("emitted_at")
        if t is None:
            continue
        events.append((
            float(t), "prediction",
            f"locations={','.join(prov.get('locations', []))}"
            f" lead={prov.get('lead_time')}"
            + (f" trace={prov['trace_id']}"
               if prov.get("trace_id") else ""),
        ))
    events.sort(key=lambda e: (e[0], e[1]))
    return [f"  {t:12.1f}  {src:<10} {msg}" for t, src, msg in events]


def cmd_postmortem(args: argparse.Namespace) -> int:
    """``postmortem``: list, inspect and replay incident bundles.

    ``--dir`` lists every retained bundle's manifest; ``--bundle``
    renders one bundle's merged causal timeline (supervisor events,
    SLO transitions, history annotations, provenance exemplars on the
    shared stream clock); add ``--replay --model MODEL`` to re-feed the
    captured record window through a fresh pipeline and verify the
    recorded predictions reproduce byte-for-byte (exit 0) or not
    (exit :data:`EXIT_DEGRADED`).
    """
    from repro.obs.forensics import (
        MANIFEST, load_bundle, replay_bundle,
    )

    if not args.bundle and not args.dir:
        print("error: postmortem needs --dir or --bundle", file=sys.stderr)
        return 2
    if args.replay and not args.bundle:
        print("error: --replay needs --bundle", file=sys.stderr)
        return 2
    if args.replay and not args.model:
        print("error: --replay needs --model (a fitted pipeline pickle, "
              "e.g. fleet --model-out)", file=sys.stderr)
        return 2

    if not args.bundle:
        root = Path(args.dir)
        manifests = []
        for sub in sorted(p for p in root.iterdir() if p.is_dir()):
            mf = sub / MANIFEST
            if not mf.exists():
                continue
            try:
                m = json.loads(mf.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            m["path"] = str(sub)
            manifests.append(m)
        if getattr(args, "json", False):
            _emit(json.dumps({"bundles": manifests}, indent=1,
                             default=_json_default))
            return 0
        if not manifests:
            _emit(f"no incident bundles under {root}")
            return 0
        _emit(f"{len(manifests)} incident bundle(s) under {root}:")
        for m in manifests:
            _emit(f"  {m.get('id', '?'):<28} {m.get('kind', '?'):<18}"
                  f" tenant={m.get('tenant') or '-':<8}"
                  f" records={m.get('records', 0):<6}"
                  f" t={m.get('stream_time')}")
        return 0

    try:
        bundle = load_bundle(args.bundle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read bundle: {exc}", file=sys.stderr)
        return 1
    manifest = bundle["manifest"]
    if getattr(args, "json", False) and not args.replay:
        _emit(json.dumps(bundle, indent=1, default=_json_default))
        return 0
    _emit(f"== incident {manifest.get('id', '?')} ==")
    _emit(f"kind     : {manifest.get('kind', '?')}"
          f" (trigger: {json.dumps(manifest.get('trigger'))})")
    _emit(f"tenant   : {manifest.get('tenant') or '-'}")
    _emit(f"stream t : {manifest.get('stream_time')}")
    _emit(f"trace    : {manifest.get('trace_id') or '-'}")
    if manifest.get("runbook"):
        _emit(f"runbook  : {manifest['runbook']}")
    _emit(f"window   : {manifest.get('records', 0)} records, "
          f"cursor={manifest.get('cursor')}, "
          f"{manifest.get('predictions', 0)} predictions")
    _emit("")
    _emit("timeline:")
    lines = _postmortem_timeline(bundle)
    _emit("\n".join(lines) if lines else "  (no timeline events)")
    if not args.replay:
        return 0

    with Path(args.model).open("rb") as fh:
        elsa: ELSA = pickle.load(fh)
    result = replay_bundle(args.bundle, elsa,
                           chunk_records=args.chunk_records)
    _emit("")
    _emit(f"replay   : {result['records_replayed']} records "
          f"({'from checkpoint' if result['from_checkpoint'] else 'fresh'})"
          f" as {result['trace_id']}"
          f" (parent {result['parent_trace_id'] or '-'})")
    _emit(f"verdict  : "
          + ("IDENTICAL — "
             f"{result['replayed_predictions']} predictions reproduced "
             "byte-for-byte"
             if result["identical"] else
             f"DIVERGED at prediction {result['first_divergence']} "
             f"(recorded {result['recorded_predictions']}, "
             f"replayed {result['replayed_predictions']})"))
    if getattr(args, "json", False):
        _emit(json.dumps(result, indent=1, default=_json_default))
    return 0 if result["identical"] else EXIT_DEGRADED


def cmd_stats(args: argparse.Namespace) -> int:
    """``stats``: summarize an observability dump as tables (or JSON)."""
    from repro.reporting import observability_json, render_observability

    try:
        data = json.loads(Path(args.metrics).read_text())
    except OSError as exc:
        print(f"error: cannot read metrics dump: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {args.metrics} is not a metrics dump: {exc}",
              file=sys.stderr)
        return 1
    if getattr(args, "json", False):
        _emit(json.dumps(observability_json(data), indent=1,
                         default=_json_default))
    else:
        _emit(render_observability(data))
    return 0


# ---------------------------------------------------------------------------
# dashboard
# ---------------------------------------------------------------------------

#: eight-level bar for terminal sparklines.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[Optional[float]]) -> str:
    """Render a value series as a unicode sparkline (gaps for ``None``)."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for v in values:
        if v is None:
            chars.append(" ")
        elif span > 0:
            chars.append(
                _SPARK_CHARS[int((v - lo) / span * (len(_SPARK_CHARS) - 1))]
            )
        else:
            chars.append(_SPARK_CHARS[len(_SPARK_CHARS) // 2])
    return "".join(chars)


def _fetch_json(base: str, path: str) -> dict:
    """GET ``base + path`` from a telemetry server, parsed as JSON."""
    import urllib.request

    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _spark_points(points: List) -> List[Optional[float]]:
    """History points -> sparkline values (histograms plot their count)."""
    out: List[Optional[float]] = []
    for _, payload in points[-48:]:
        if isinstance(payload, (list, tuple)):
            out.append(float(payload[0]) if payload else None)
        else:
            out.append(float(payload) if payload is not None else None)
    return out


def render_dashboard(base: str) -> str:
    """One dashboard frame: health, SLO table, sparklines, top stages."""
    health = _fetch_json(base, "/health")
    alerts = _fetch_json(base, "/alerts")
    profile = _fetch_json(base, "/profile")
    lines = [f"== elsa telemetry dashboard — {base} =="]
    status = health.get("status", "?")
    reasons = ", ".join(health.get("reasons", ()))
    lines.append(f"health: {status}" + (f" ({reasons})" if reasons else ""))
    lines += ["", "SLOs:"]
    slos = alerts.get("slos", [])
    if not slos:
        lines.append("  (no SLOs configured)")
    for slo in slos:
        fast = slo.get("fast")
        slow = slo.get("slow")

        def _num(v):
            return f"{v:.4g}" if isinstance(v, (int, float)) else "—"

        lines.append(
            f"  {slo['name']:<22} {slo.get('state', '?'):<9}"
            f" fast={_num(fast):<8} slow={_num(slow):<8}"
            f" threshold={_num(slo.get('threshold'))}"
        )
        try:
            query = _fetch_json(
                base,
                f"/query?metric={slo['metric']}"
                f"&window={slo.get('slow_window', 1800)}",
            )
        except Exception:
            continue  # metric not sampled yet: row stands without a spark
        spark = _sparkline(_spark_points(query.get("points", [])))
        if spark:
            lines.append(f"    {slo['metric']:<20} {spark}")
    firing = alerts.get("firing", [])
    if firing:
        lines.append(f"  FIRING: {', '.join(firing)}")
    lines += ["", "Top stages (profiler self time):"]
    stages = profile.get("stages", {})
    if not stages:
        running = profile.get("running", False)
        lines.append(
            "  (no profile samples"
            + ("" if running else "; profiler not running")
            + ")"
        )
    else:
        rows = sorted(
            stages.items(),
            key=lambda kv: (-kv[1].get("self_seconds", 0.0), kv[0]),
        )
        for name, vals in rows[:8]:
            lines.append(
                f"  {name:<22} self={vals.get('self_seconds', 0.0):8.3f}s"
                f"  total={vals.get('total_seconds', 0.0):8.3f}s"
            )
        frac = profile.get("attributed_fraction")
        if frac is not None:
            lines.append(f"  attributed: {frac:.1%} of sampled wall time")
    try:
        fleet = _fetch_json(base, "/fleet")
    except Exception:
        fleet = None  # older server without the endpoint: omit the view
    if fleet and fleet.get("active"):
        lines += ["", f"Fleet ({fleet.get('tenants', 0)} tenants, "
                      f"{fleet.get('records_routed', 0)} routed):"]
        shards = fleet.get("shards", {})
        for tenant in sorted(shards):
            info = shards[tenant]
            flags = []
            if info.get("restarts"):
                flags.append(f"restarts={info['restarts']}")
            if info.get("shed"):
                flags.append(f"shed={info['shed']}")
            if info.get("last_error"):
                flags.append(info["last_error"])
            lines.append(
                f"  {tenant:<12} {info.get('state', '?'):<11}"
                f" q={info.get('queue_depth', 0):<6}"
                f" fed={info.get('records_fed', 0):<8}"
                + ("  " + " ".join(flags) if flags else "")
            )
        router = fleet.get("router", {})
        lines.append(
            f"  router: {router.get('accepted', 0)} accepted, "
            f"{router.get('shed', 0)} shed, "
            f"{router.get('dead_lettered', 0)} dead-lettered"
        )
        events = (fleet.get("supervision") or {}).get("events", [])
        for ev in events[-4:]:
            lines.append(
                f"  event: {ev.get('kind', '?'):<10} "
                f"tenant={ev.get('tenant', '?')}"
            )
    try:
        incidents = _fetch_json(base, "/incidents")
    except Exception:
        incidents = None  # older server without the endpoint: omit
    if incidents and (incidents.get("armed") or incidents.get("triggers")):
        lines += ["", f"Incidents ({incidents.get('active', 0)} retained, "
                      f"{incidents.get('triggers', 0)} triggers, "
                      f"{incidents.get('failed', 0)} failed):"]
        for m in incidents.get("incidents", [])[-4:]:
            lines.append(
                f"  {m.get('id', '?'):<26} {m.get('kind', '?'):<16}"
                f" tenant={m.get('tenant') or '-':<8}"
                f" t={m.get('stream_time')}"
            )
        if not incidents.get("incidents"):
            lines.append("  (no bundles captured)")
    return "\n".join(lines)


def cmd_dashboard(args: argparse.Namespace) -> int:
    """``dashboard``: render a live telemetry server in the terminal.

    Polls ``/health``, ``/alerts``, ``/profile`` and ``/query`` on a
    running ``--listen`` server and prints an SLO status table, metric
    sparklines and the profiler's top stages.  One frame by default;
    ``--iterations N --refresh S`` watches continuously (``--iterations
    0`` = forever).
    """
    from urllib.error import URLError

    base = args.url.rstrip("/")
    if not base.startswith(("http://", "https://")):
        base = "http://" + base
    i = 0
    while True:
        try:
            frame = render_dashboard(base)
        except (URLError, OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot reach telemetry server at {base}: {exc}",
                  file=sys.stderr)
            return 1
        _emit(frame)
        i += 1
        if args.iterations and i >= args.iterations:
            return 0
        try:
            time.sleep(args.refresh)
        except KeyboardInterrupt:
            return 0
        _emit("")


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def _add_global_options(
    parser: argparse.ArgumentParser, suppress: bool = False
) -> None:
    """Observability flags, valid before *or* after the subcommand.

    Subparser copies use ``SUPPRESS`` defaults so an unset flag never
    clobbers a value parsed from the main-parser position.
    """
    flag_default = argparse.SUPPRESS if suppress else False
    value_default = argparse.SUPPRESS if suppress else None
    parser.add_argument(
        "--metrics-out", dest="metrics_out", metavar="FILE",
        default=value_default,
        help="dump the metrics registry + span tree as JSON after the run",
    )
    parser.add_argument(
        "--log-level", dest="log_level",
        choices=("debug", "info", "warning", "error"),
        default=value_default,
        help="pipeline log level (also: ELSA_LOG_LEVEL env var)",
    )
    parser.add_argument(
        "--quiet", dest="quiet", action="store_true", default=flag_default,
        help="suppress human-readable console output",
    )


def _add_resilience_options(parser: argparse.ArgumentParser) -> None:
    """``--lenient``/``--strict`` pair for log-consuming subcommands.

    Strict (the default) raises on the first malformed line; lenient
    routes input through the hardened-ingestion path (skip + quarantine
    + reorder + dedupe) and the run exits with status
    :data:`EXIT_DEGRADED` when anything was dropped or repaired.
    """
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--lenient", dest="lenient", action="store_true", default=False,
        help="survive hostile input: skip malformed lines, sanitize the "
             "stream, exit 3 if the run degraded",
    )
    group.add_argument(
        "--strict", dest="lenient", action="store_false",
        help="fail fast on the first malformed line (default)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``elsa-repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="elsa-repro",
        description="Hybrid HPC fault prediction (SC'12 reproduction).",
    )
    _add_global_options(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic scenario")
    p.add_argument("--system", choices=("bluegene", "mercury"),
                   default="bluegene")
    p.add_argument("--days", type=float, default=3.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--log", required=True, help="output log file")
    p.add_argument("--truth", required=True, help="output ground-truth JSON")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("fit", help="train the offline phase on a log file")
    p.add_argument("--system", choices=("bluegene", "mercury"),
                   default="bluegene")
    p.add_argument("--log", required=True)
    p.add_argument("--format", choices=("text", "bgl"), default="text",
                   help="'bgl' reads the public Blue Gene/L RAS format")
    p.add_argument("--train-end", type=float, required=True,
                   dest="train_end")
    p.add_argument("--model", required=True, help="output model pickle")
    _add_resilience_options(p)
    p.set_defaults(func=cmd_fit)

    p = sub.add_parser("predict", help="run the online phase")
    p.add_argument("--model", required=True)
    p.add_argument("--log", required=True)
    p.add_argument("--format", choices=("text", "bgl"), default="text")
    p.add_argument("--t-start", type=float, required=True, dest="t_start")
    p.add_argument("--t-end", type=float, default=None, dest="t_end")
    p.add_argument("--out", required=True, help="output predictions JSON")
    _add_resilience_options(p)
    p.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="write the online state here periodically (crash recovery)",
    )
    p.add_argument(
        "--checkpoint-every", dest="checkpoint_every", type=int,
        metavar="N", default=None,
        help="records between checkpoints (default 4096 when enabled)",
    )
    p.add_argument(
        "--resume-from", dest="resume_from", metavar="FILE", default=None,
        help="resume a killed run from this checkpoint file",
    )
    p.add_argument(
        "--batch-size", dest="batch_size", type=int, metavar="N",
        default=None,
        help="records per feed chunk on the streaming engine (selects "
             "it when no checkpointing flag does; decouples feed "
             "granularity from --checkpoint-every)",
    )
    p.add_argument(
        "--fast-path", dest="fast_path",
        action=argparse.BooleanOptionalAction, default=True,
        help="vectorized streaming fast path (indexed template matcher "
             "+ detector bank); --no-fast-path forces the scalar "
             "reference loops, predictions are identical either way",
    )
    p.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="serve the telemetry endpoints (/metrics, /health, /state, "
             "/query, /alerts, /profile) over HTTP during the run "
             "(port 0 picks a free port)",
    )
    p.add_argument(
        "--profile", dest="profile", action="store_true",
        help="run the sampling stage profiler during the stream "
             "(per-stage self/total times on /profile and `dashboard`)",
    )
    p.add_argument(
        "--linger", type=float, metavar="SECONDS", default=0.0,
        help="keep the --listen server up this long after the run",
    )
    p.add_argument(
        "--truth", metavar="FILE", default=None,
        help="ground-truth JSON: score predictions in-stream on the "
             "online scoreboard",
    )
    p.add_argument(
        "--provenance-out", dest="provenance_out", metavar="FILE",
        default=None,
        help="dump per-prediction audit records as JSON lines",
    )
    p.add_argument(
        "--self-heal", dest="self_heal", action="store_true",
        help="run the model-lifecycle loop: shadow-retrain on drift or "
             "recall degradation, validate, and hot-swap (needs --truth "
             "for the validation gate to ever accept a candidate)",
    )
    p.add_argument(
        "--model-store", dest="model_store", metavar="DIR", default=None,
        help="directory for pickled model versions (lets a resumed run "
             "restore a hot-swapped model); implies --self-heal",
    )
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("evaluate", help="score predictions vs ground truth")
    p.add_argument("--predictions", required=True)
    p.add_argument("--truth", required=True)
    p.add_argument("--t-start", type=float, default=0.0, dest="t_start")
    p.add_argument("--t-end", type=float, default=None, dest="t_end")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("report", help="end-to-end synthetic run")
    p.add_argument("--system", choices=("bluegene", "mercury"),
                   default="bluegene")
    p.add_argument("--days", type=float, default=3.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "fleet",
        help="multi-tenant supervised serving: shard the test stream "
             "per tenant and run it through the fleet router/supervisor",
    )
    p.add_argument("--system", choices=("bluegene", "mercury"),
                   default="bluegene")
    p.add_argument("--days", type=float, default=1.5)
    p.add_argument("--seed", type=int, default=0)
    group = p.add_mutually_exclusive_group()
    group.add_argument(
        "--tenants", type=int, default=8, metavar="N",
        help="shard locations into N stable hash buckets (default 8)",
    )
    group.add_argument(
        "--rack-sharding", dest="rack_sharding", action="store_true",
        default=False,
        help="shard by rack-midplane subtree instead of hash buckets",
    )
    p.add_argument(
        "--queue-capacity", dest="queue_capacity", type=int, default=8192,
        metavar="N", help="bounded per-tenant ingest queue size",
    )
    p.add_argument(
        "--chunk-records", dest="chunk_records", type=int, default=512,
        metavar="N", help="records per shard step (pump quantum)",
    )
    p.add_argument(
        "--checkpoint-every", dest="checkpoint_every", type=int,
        default=2048, metavar="N",
        help="records between per-shard checkpoints",
    )
    p.add_argument(
        "--checkpoint-dir", dest="checkpoint_dir", metavar="DIR",
        default=None,
        help="directory for per-shard checkpoints (default: a "
             "temporary directory removed on exit)",
    )
    p.add_argument(
        "--self-heal", dest="self_heal", action="store_true",
        help="run each shard on the self-healing lifecycle loop",
    )
    p.add_argument(
        "--kill", action="append", metavar="TENANT[:AFTER]", default=None,
        help="chaos: crash TENANT's shard once its cursor passes AFTER "
             "records (default 0 = first step); repeatable",
    )
    p.add_argument(
        "--incident-dir", dest="incident_dir", metavar="DIR", default=None,
        help="arm incident forensics: SLO firings and shard "
             "quarantines/restarts freeze evidence bundles here "
             "(inspect them with `postmortem`)",
    )
    p.add_argument(
        "--model-out", dest="model_out", metavar="FILE", default=None,
        help="pickle the fitted pipeline (what `postmortem --replay "
             "--model` needs to re-run a bundle)",
    )
    p.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="serve the telemetry endpoints incl. /fleet during the run "
             "(port 0 picks a free port)",
    )
    p.add_argument(
        "--linger", type=float, metavar="SECONDS", default=0.0,
        help="keep the --listen server up this long after the run",
    )
    p.add_argument(
        "--out", default=None,
        help="write per-tenant predictions + fleet state as JSON",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="print the per-tenant shard table",
    )
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "serve",
        help="network ingest frontend: serve POST /ingest/<tenant> + "
             "GET /predictions/<tenant> over a supervised fleet until "
             "SIGTERM, then drain gracefully",
    )
    p.add_argument("--system", choices=("bluegene", "mercury"),
                   default="bluegene")
    p.add_argument("--days", type=float, default=1.5)
    p.add_argument("--seed", type=int, default=0)
    group = p.add_mutually_exclusive_group()
    group.add_argument(
        "--tenants", type=int, default=8, metavar="N",
        help="shard locations into N stable hash buckets (default 8)",
    )
    group.add_argument(
        "--rack-sharding", dest="rack_sharding", action="store_true",
        default=False,
        help="shard by rack-midplane subtree instead of hash buckets",
    )
    p.add_argument(
        "--listen", metavar="HOST:PORT", default="127.0.0.1:0",
        help="bind address for the ingest + telemetry endpoints "
             "(default 127.0.0.1:0 = free port, printed on startup)",
    )
    p.add_argument(
        "--checkpoint-dir", dest="checkpoint_dir", metavar="DIR",
        default=None,
        help="directory for per-shard checkpoints + the idempotency "
             "ledger (default: temporary; required for --resume)",
    )
    p.add_argument(
        "--resume", action="store_true", default=False,
        help="adopt the checkpoints and ingest ledger a drained "
             "server left in --checkpoint-dir",
    )
    p.add_argument(
        "--queue-capacity", dest="queue_capacity", type=int, default=8192,
        metavar="N", help="bounded per-tenant ingest queue size",
    )
    p.add_argument(
        "--chunk-records", dest="chunk_records", type=int, default=512,
        metavar="N", help="records per shard step (pump quantum)",
    )
    p.add_argument(
        "--checkpoint-every", dest="checkpoint_every", type=int,
        default=2048, metavar="N",
        help="records between per-shard checkpoints",
    )
    p.add_argument(
        "--max-batch-records", dest="max_batch_records", type=int,
        default=8192, metavar="N",
        help="largest NDJSON batch one POST may carry (413 above)",
    )
    p.add_argument(
        "--admission-rate", dest="admission_rate", type=float,
        default=50000.0, metavar="RECORDS_PER_SEC",
        help="token-bucket refill at full queue headroom; refill "
             "scales down with live queue depth, 429 + Retry-After "
             "past it",
    )
    p.add_argument(
        "--request-timeout", dest="request_timeout", type=float,
        default=30.0, metavar="SECONDS",
        help="per-connection socket timeout (slowloris guard; "
             "counted in telemetry.request_timeouts)",
    )
    p.add_argument(
        "--pump-interval", dest="pump_interval", type=float,
        default=0.02, metavar="SECONDS",
        help="sleep between fleet pump passes in the serve loop",
    )
    p.add_argument(
        "--max-runtime", dest="max_runtime", type=float, default=None,
        metavar="SECONDS",
        help="drain and exit after this long even without a signal "
             "(smoke tests)",
    )
    p.add_argument(
        "--self-heal", dest="self_heal", action="store_true",
        help="run each shard on the self-healing lifecycle loop",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "feed",
        help="drive a `serve` frontend through the resilient ingest "
             "client (idempotent batches, retries, optional wire chaos)",
    )
    p.add_argument("--url", required=True,
                   help="base URL printed by `serve` "
                        "(e.g. http://127.0.0.1:9200)")
    p.add_argument("--system", choices=("bluegene", "mercury"),
                   default="bluegene")
    p.add_argument("--days", type=float, default=1.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--log", default=None, metavar="FILE",
        help="feed this text log instead of regenerating the scenario "
             "(note: the text format rounds timestamps to 1ms, so "
             "byte-identity checks against an in-process run must use "
             "scenario mode)",
    )
    p.add_argument("--t-start", type=float, default=None, dest="t_start",
                   help="with --log: drop records before this time")
    p.add_argument("--t-end", type=float, default=None, dest="t_end",
                   help="with --log: drop records at/after this time")
    group = p.add_mutually_exclusive_group()
    group.add_argument(
        "--tenants", type=int, default=8, metavar="N",
        help="tenant hash buckets — must match the server's",
    )
    group.add_argument(
        "--rack-sharding", dest="rack_sharding", action="store_true",
        default=False,
        help="rack-subtree keying — must match the server's",
    )
    p.add_argument(
        "--batch-size", dest="batch_size", type=int, default=256,
        metavar="N", help="records per POST batch",
    )
    p.add_argument(
        "--stream-id", dest="stream_id", default="s0", metavar="ID",
        help="idempotency stream id (sequence numbers are per "
             "tenant+stream)",
    )
    p.add_argument(
        "--max-attempts", dest="max_attempts", type=int, default=8,
        metavar="N", help="transport-failure retry budget per batch",
    )
    p.add_argument(
        "--timeout", type=float, default=10.0, metavar="SECONDS",
        help="per-request HTTP timeout",
    )
    p.add_argument(
        "--seal", action="store_true", default=False,
        help="seal every touched tenant after feeding (final sorted "
             "predictions)",
    )
    p.add_argument(
        "--predictions-out", dest="predictions_out", metavar="FILE",
        default=None,
        help="write sealed per-tenant predictions as JSON (same "
             "'tenants' shape as `fleet --out`; implies --seal)",
    )
    p.add_argument("--chaos-drop", dest="chaos_drop", type=float,
                   default=0.0, metavar="RATE",
                   help="wire chaos: drop requests at this rate")
    p.add_argument("--chaos-drop-response", dest="chaos_drop_response",
                   type=float, default=0.0, metavar="RATE",
                   help="wire chaos: deliver but drop the response "
                        "(the at-least-once hazard)")
    p.add_argument("--chaos-dup", dest="chaos_dup", type=float,
                   default=0.0, metavar="RATE",
                   help="wire chaos: duplicate requests")
    p.add_argument("--chaos-reorder", dest="chaos_reorder", type=float,
                   default=0.0, metavar="RATE",
                   help="wire chaos: redeliver a stale copy before the "
                        "next request")
    p.add_argument("--chaos-truncate", dest="chaos_truncate", type=float,
                   default=0.0, metavar="RATE",
                   help="wire chaos: cut requests mid-body (server 408s)")
    p.add_argument("--chaos-stall", dest="chaos_stall", type=float,
                   default=0.0, metavar="RATE",
                   help="wire chaos: pause mid-body for "
                        "--chaos-stall-seconds")
    p.add_argument("--chaos-stall-seconds", dest="chaos_stall_seconds",
                   type=float, default=0.1, metavar="SECONDS")
    p.add_argument("--chaos-seed", dest="chaos_seed", type=int, default=0,
                   metavar="N", help="seed for the chaos RNG")
    p.set_defaults(func=cmd_feed)

    p = sub.add_parser(
        "reproduce",
        help="regenerate the headline paper results (Table III, Fig. 9, "
             "Table IV) as markdown",
    )
    p.add_argument("--days", type=float, default=7.0)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--out", default=None,
                   help="write the report here instead of stdout")
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser(
        "stats",
        help="summarize an observability dump (see --metrics-out)",
    )
    p.add_argument("--metrics", required=True,
                   help="JSON file written by --metrics-out")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (histogram quantiles, "
                        "labeled series, throughput) instead of tables")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "dashboard",
        help="terminal dashboard for a live --listen telemetry server",
    )
    p.add_argument("--url", required=True,
                   help="base URL of the telemetry server "
                        "(e.g. http://127.0.0.1:9100)")
    p.add_argument("--iterations", type=int, default=1, metavar="N",
                   help="frames to render before exiting (0 = forever; "
                        "default 1)")
    p.add_argument("--refresh", type=float, default=2.0, metavar="SECONDS",
                   help="seconds between frames (default 2)")
    p.set_defaults(func=cmd_dashboard)

    p = sub.add_parser(
        "monitor",
        help="serve a --metrics-out dump on the telemetry endpoints",
    )
    p.add_argument("--metrics", required=True,
                   help="JSON file written by --metrics-out")
    p.add_argument("--listen", metavar="HOST:PORT", required=True,
                   help="bind address (port 0 picks a free port)")
    p.add_argument("--linger", type=float, metavar="SECONDS", default=None,
                   help="serve this long then exit (default: until ctrl-c)")
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser(
        "postmortem",
        help="list, inspect and deterministically replay incident "
             "bundles (see fleet --incident-dir)",
    )
    p.add_argument("--dir", default=None, metavar="DIR",
                   help="incident directory: list every bundle's manifest")
    p.add_argument("--bundle", default=None, metavar="DIR",
                   help="one bundle directory: render its causal timeline")
    p.add_argument("--replay", action="store_true",
                   help="re-feed the bundle's record window through a "
                        "fresh pipeline and verify the recorded "
                        "predictions reproduce (exit 3 on divergence)")
    p.add_argument("--model", default=None, metavar="FILE",
                   help="fitted pipeline pickle for --replay "
                        "(fleet --model-out / fit --model)")
    p.add_argument("--chunk-records", dest="chunk_records", type=int,
                   default=None, metavar="N",
                   help="replay feed quantum (default: the bundle's "
                        "recorded chunk_records)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_postmortem)

    p = sub.add_parser(
        "explain",
        help="render prediction audit records (see predict "
             "--provenance-out)",
    )
    p.add_argument("--provenance", required=True,
                   help="JSON-lines file written by --provenance-out")
    p.add_argument("--index", type=int, default=None,
                   help="render only this record (0-based)")
    p.add_argument("--model", default=None,
                   help="model pickle: resolve event ids to template text")
    p.set_defaults(func=cmd_explain)

    for sp in sub.choices.values():
        _add_global_options(sp, suppress=True)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    set_quiet(bool(getattr(args, "quiet", False)))
    try:
        obs.configure_logging(getattr(args, "log_level", None))
        obs.reset()
        rc = args.func(args)
        metrics_out = getattr(args, "metrics_out", None)
        if metrics_out:
            try:
                _dump_observability(metrics_out)
            except OSError as exc:
                # The subcommand's work is done; don't traceback over a
                # bad dump path, but do signal the missing artifact.
                print(f"error: cannot write metrics dump: {exc}",
                      file=sys.stderr)
                return rc or 1
        return rc
    finally:
        set_quiet(False)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
