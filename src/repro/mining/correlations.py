"""Correlation-chain data model.

"Given a table set of signals S, a gradual item is a pair (Si, θi) where
Si is an attribute in S and θi represents a delay in the signal.  A
gradual itemset G = {(S1, θ1), ..., (Sk, θk)} is a set of gradual items of
cardinality greater than or equal to 2." (section III.C)

:class:`GradualItem` and :class:`CorrelationChain` implement exactly that,
with delays in *samples* (multiples of the 10-second unit — the paper's
Table I lists delays as time units for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True, order=True)
class GradualItem:
    """(event type, delay) — one item of a gradual itemset.

    ``delay`` is in samples relative to the chain anchor (the first
    symptom), so the anchor itself has delay 0.
    """

    delay: int
    event_type: int

    def shifted(self, offset: int) -> "GradualItem":
        """Item with its delay moved by ``offset`` samples."""
        return GradualItem(delay=self.delay + offset, event_type=self.event_type)


@dataclass(frozen=True)
class CorrelationChain:
    """A gradual itemset: ≥2 events with fixed relative delays.

    ``support`` counts complete pattern occurrences in training;
    ``confidence`` is the fraction of anchor outliers whose full pattern
    completed (the paper's "similarity degree"/confidence, which drops as
    the span grows past ~5 minutes).  ``p_value`` comes from the
    Mann-Whitney significance test on the seeding pair correlations.
    """

    items: Tuple[GradualItem, ...]
    support: int = 0
    confidence: float = 0.0
    p_value: float = 1.0

    def __post_init__(self) -> None:
        if len(self.items) < 2:
            raise ValueError("a gradual itemset has cardinality >= 2")
        ordered = tuple(sorted(self.items))
        if ordered != self.items:
            object.__setattr__(self, "items", ordered)
        if self.items[0].delay != 0:
            raise ValueError("chain anchor must have delay 0")
        if len({it.event_type for it in self.items}) != len(self.items):
            raise ValueError("duplicate event types in chain")

    # -- shape -------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of events in the chain (Fig. 5's x-axis)."""
        return len(self.items)

    @property
    def span(self) -> int:
        """Samples between first symptom and last event (Fig. 6's x-axis)."""
        return self.items[-1].delay

    def span_seconds(self, sampling_period: float = 10.0) -> float:
        """Span converted to seconds."""
        return self.span * sampling_period

    @property
    def anchor(self) -> int:
        """Event type of the first symptom."""
        return self.items[0].event_type

    @property
    def event_types(self) -> Tuple[int, ...]:
        """Event types in delay order."""
        return tuple(it.event_type for it in self.items)

    def delay_of(self, event_type: int) -> int:
        """Delay of ``event_type`` within the chain (raises if absent)."""
        for it in self.items:
            if it.event_type == event_type:
                return it.delay
        raise KeyError(f"event type {event_type} not in chain")

    # -- structure ---------------------------------------------------------

    def contains(self, other: "CorrelationChain") -> bool:
        """Is ``other`` a sub-itemset with consistent relative delays?

        Delays are compared after re-anchoring ``other`` on its first
        event's delay inside ``self``.
        """
        try:
            base = self.delay_of(other.items[0].event_type)
        except KeyError:
            return False
        for it in other.items:
            try:
                if self.delay_of(it.event_type) - base != it.delay:
                    return False
            except KeyError:
                return False
        return True

    def prefix(self, k: int) -> Tuple[GradualItem, ...]:
        """First ``k`` items (used for sibling joins)."""
        return self.items[:k]

    def with_stats(
        self, support: int, confidence: float, p_value: float
    ) -> "CorrelationChain":
        """Copy with measured statistics attached."""
        return replace(
            self, support=support, confidence=confidence, p_value=p_value
        )

    def describe(self, names: Optional[Sequence[str]] = None) -> str:
        """Human-readable rendering in the paper's Table I style."""
        parts = []
        for i, it in enumerate(self.items):
            label = (
                names[it.event_type]
                if names is not None
                else f"S{it.event_type}"
            )
            if i == 0:
                parts.append(label)
            else:
                gap = it.delay - self.items[i - 1].delay
                parts.append(f"after {gap} time unit(s): {label}")
            # noqa: E501 - matches the paper's listing style
        return "\n".join(parts)
