"""Data-mining layer: gradual itemset mining over outlier trains.

Section III.C adapts the sequential GRITE gradual-itemset algorithm [2]
to binarized outlier signals: the first tree level is seeded with the
2-pair correlations from the signal cross-correlation function, each item
carries a fixed delay θ, only the ≥ (decreasing) comparison operator is
kept, and the Mann-Whitney test decides statistical significance.

* :mod:`repro.mining.correlations` — :class:`GradualItem` /
  :class:`CorrelationChain` data model;
* :mod:`repro.mining.mannwhitney` — from-scratch Mann-Whitney U test;
* :mod:`repro.mining.grite` — the adapted level-wise miner.
"""

from repro.mining.correlations import CorrelationChain, GradualItem
from repro.mining.mannwhitney import MannWhitneyResult, mann_whitney_u
from repro.mining.grite import GriteConfig, GriteMiner

__all__ = [
    "GradualItem",
    "CorrelationChain",
    "MannWhitneyResult",
    "mann_whitney_u",
    "GriteConfig",
    "GriteMiner",
]
