"""Multicore gradual-itemset mining (the paper's PGP-mc direction).

"Recent research on gradual itemset mining has focused on parallel
methods that are able to use multi-core architectures [3].  We plan to
investigate the use of such methods on-line in order to adapt
correlations to changes in the system." (section III.C)

The dominant cost of :class:`repro.mining.grite.GriteMiner` is level-1
seeding: an all-pairs sweep of outlier trains (O(n² ) correlation calls).
Pairs are independent, so the sweep parallelizes embarrassingly;
:class:`ParallelGriteMiner` fans the anchor rows out over a process pool
(processes, not threads — the work is numpy-light Python that the GIL
would serialize) and reuses the sequential growth/pruning machinery,
producing bit-identical results to the sequential miner.

Workers receive the full train table once via the pool initializer, so
per-task pickling stays O(1).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.mining.grite import GriteConfig, GriteMiner
from repro.signals.crosscorr import PairCorrelation, correlate_outlier_trains

# Worker-process globals, set once by the pool initializer.
_WORKER_TRAINS: Dict[int, np.ndarray] = {}
_WORKER_CONFIG: Optional[GriteConfig] = None
_WORKER_HORIZON: int = 1


def _init_worker(
    trains: Dict[int, np.ndarray], config: GriteConfig, horizon: int
) -> None:
    """Install the shared mining state in a worker process."""
    global _WORKER_TRAINS, _WORKER_CONFIG, _WORKER_HORIZON
    _WORKER_TRAINS = trains
    _WORKER_CONFIG = config
    _WORKER_HORIZON = horizon


def _seed_anchor_row(a: int) -> List[Tuple[int, int, PairCorrelation]]:
    """All significant pairs anchored at event type ``a`` (worker side).

    Mirrors ``GriteMiner._seed_pairs``'s inner loop exactly, including
    the statistical filters, so sequential and parallel outputs agree.
    """
    cfg = _WORKER_CONFIG
    trains = _WORKER_TRAINS
    assert cfg is not None
    scorer = GriteMiner(cfg)
    ta = trains[a]
    out: List[Tuple[int, int, PairCorrelation]] = []
    for b in sorted(trains):
        if a == b:
            continue
        pc = correlate_outlier_trains(
            ta,
            trains[b],
            max_lag=cfg.max_pair_delay,
            tolerance=cfg.tolerance,
            rel_tolerance=cfg.rel_tolerance,
            min_matches=cfg.min_support,
        )
        if pc is None or pc.strength < cfg.min_confidence:
            continue
        if pc.delay == 0 and b < a:
            continue
        p_hit, p_tail = scorer._chance_probability(pc, _WORKER_HORIZON)
        if p_hit > cfg.max_chance_hit or p_tail >= cfg.alpha_chance:
            continue
        if ta.size >= cfg.mw_min_samples:
            mw = scorer._pair_significance(ta, trains[b], pc.delay)
            if mw.p_value >= cfg.alpha:
                continue
        out.append((a, b, pc))
    return out


class ParallelGriteMiner(GriteMiner):
    """GRITE with a process-parallel level-1 sweep.

    Parameters
    ----------
    config:
        Same knobs as the sequential miner.
    n_jobs:
        Worker processes; defaults to the machine's CPU count.  With
        ``n_jobs=1`` the sequential path runs (no pool overhead), which
        also makes the class a drop-in default.
    """

    def __init__(
        self,
        config: Optional[GriteConfig] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        super().__init__(config)
        self.n_jobs = n_jobs if n_jobs is not None else (os.cpu_count() or 1)
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")

    def _seed_pairs(
        self, trains: Mapping[int, np.ndarray]
    ) -> Dict[int, List[Tuple[int, PairCorrelation]]]:
        if self.n_jobs == 1 or len(trains) < 8:
            return super()._seed_pairs(trains)

        trains = dict(trains)
        horizon = max(
            (int(t[-1]) + 1 for t in trains.values() if t.size), default=1
        )
        anchors = sorted(trains)
        self.seed_pairs = []
        by_src: Dict[int, List[Tuple[int, PairCorrelation]]] = {}
        with ProcessPoolExecutor(
            max_workers=min(self.n_jobs, len(anchors)),
            initializer=_init_worker,
            initargs=(trains, self.config, horizon),
        ) as pool:
            for row in pool.map(_seed_anchor_row, anchors, chunksize=4):
                for a, b, pc in row:
                    by_src.setdefault(a, []).append((b, pc))
                    self.seed_pairs.append((a, b, pc))
        return by_src
