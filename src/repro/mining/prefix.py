"""Chain-prefix index: columnar trigger matching for correlation chains.

Both online engines walk the same pattern on every outlier: "which
chains does this anchor event open, and when is each chain's failure
expected?"  The object form — a linear scan over ``self.chains`` per
flagged sample — is the chain-matching analogue of the per-record
Python loops the columnar refactor removed everywhere else.

:class:`ChainPrefixIndex` is the array form of that prefix state,
built once per chain list:

- ``by_anchor`` groups chain indices by their anchor (prefix head), so
  a flagged anchor maps to its candidate chains in O(1);
- parallel per-chain arrays (``spans``, ``anchors``, ``fatals``,
  quantile columns) let a whole *batch* of triggers be priced at once:
  predicted times, prediction intervals, and the too-late cut are
  single vectorized expressions over ``(sample, chain)`` pairs instead
  of per-trigger float arithmetic.

The stateful part of chain matching (suppression of re-triggers while
a chain instance is active) is inherently sequential and stays in the
engines; everything feed-forward lives here.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.mining.correlations import CorrelationChain

__all__ = ["ChainPrefixIndex"]


def _chain_key(chain: CorrelationChain) -> Tuple:
    return tuple((it.event_type, it.delay) for it in chain.items)


class ChainPrefixIndex:
    """Columnar view of a chain list, keyed by anchor event type.

    Parameters
    ----------
    chains:
        The armed correlation chains, in engine order (indices into
        this sequence are the chain ids used throughout).
    span_quantiles:
        Optional ``chain_key -> (q_lo, q_med, q_hi)`` adaptive-window
        quantiles (in samples); chains without an entry fall back to
        their fixed span, mirroring the scalar engines.
    """

    def __init__(
        self,
        chains: Sequence[CorrelationChain],
        span_quantiles: Optional[Mapping[Tuple, Tuple[int, int, int]]] = None,
    ) -> None:
        sq = span_quantiles or {}
        n = len(chains)
        self.chains = list(chains)
        self.keys: List[Tuple] = [_chain_key(c) for c in chains]
        self.by_anchor: Dict[int, List[int]] = {}
        for i, chain in enumerate(chains):
            self.by_anchor.setdefault(chain.anchor, []).append(i)
        self.anchors = np.array(
            [c.anchor for c in chains], dtype=np.int64
        ).reshape(n)
        self.fatals = np.array(
            [c.items[-1].event_type for c in chains], dtype=np.int64
        ).reshape(n)
        self.spans = np.array(
            [c.span for c in chains], dtype=np.float64
        ).reshape(n)
        #: -1 where no adaptive window is known (use the fixed span)
        self.q_lo = np.full(n, -1.0)
        self.q_med = np.full(n, -1.0)
        self.q_hi = np.full(n, -1.0)
        for i, key in enumerate(self.keys):
            q = sq.get(key)
            if q is not None:
                self.q_lo[i], self.q_med[i], self.q_hi[i] = q
        self.has_quantiles = self.q_med >= 0

    def __len__(self) -> int:
        return len(self.chains)

    def chains_for(self, anchor: int) -> List[int]:
        """Chain indices opened by an outlier on ``anchor``."""
        return self.by_anchor.get(anchor, [])

    def expand_triggers(
        self, outliers: Mapping[int, np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All ``(sample, chain)`` trigger pairs, in scalar-engine order.

        ``outliers`` maps anchor event type to flagged sample indices.
        Returns parallel int64 arrays ``(samples, chain_ids)`` sorted by
        sample with ties in chain-list order — exactly the order the
        object engine's ``triggers.sort`` (stable, chain-major build)
        produces.
        """
        s_parts: List[np.ndarray] = []
        c_parts: List[np.ndarray] = []
        for ci, chain in enumerate(self.chains):
            flagged = outliers.get(chain.anchor)
            if flagged is None or len(flagged) == 0:
                continue
            flagged = np.asarray(flagged, dtype=np.int64)
            s_parts.append(flagged)
            c_parts.append(np.full(len(flagged), ci, dtype=np.int64))
        if not s_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        s = np.concatenate(s_parts)
        c = np.concatenate(c_parts)
        order = np.lexsort((c, s))
        return s[order], c[order]

    def price_triggers(
        self,
        samples: np.ndarray,
        chain_ids: np.ndarray,
        t_start: float,
        analysis: np.ndarray,
        period: float,
        min_visible_window: float,
    ) -> Dict[str, np.ndarray]:
        """Vectorized trigger timing: one expression per column.

        For each ``(sample, chain)`` pair computes the trigger close
        time, visibility time, predicted failure time and interval, and
        the too-late mask — float-for-float what the scalar engine does
        per trigger (quantile chains: ``t_anchor + q*period + period``;
        span chains: ``t_anchor + span*period + period``; sample times
        anchored at ``t_start``).
        """
        t_anchor = t_start + samples * period
        t_trigger = t_anchor + period
        t_emit = t_trigger + analysis[samples]
        hq = self.has_quantiles[chain_ids]
        span_term = np.where(
            hq, self.q_med[chain_ids], self.spans[chain_ids]
        )
        t_pred = t_anchor + span_term * period + period
        t_pred_lo = t_anchor + self.q_lo[chain_ids] * period + period
        t_pred_hi = t_anchor + self.q_hi[chain_ids] * period + period
        too_late = (t_pred - t_emit < min_visible_window) | (
            t_pred <= t_emit
        )
        return {
            "t_trigger": t_trigger,
            "t_emit": t_emit,
            "t_pred": t_pred,
            "t_pred_lo": t_pred_lo,
            "t_pred_hi": t_pred_hi,
            "has_quantiles": hq,
            "too_late": too_late,
        }
