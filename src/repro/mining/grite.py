"""GRITE adapted to delayed outlier trains (section III.C).

The sequential GRITE algorithm explores a tree level by level: "Itemsets
from the L level are computed by combining frequent itemsets siblings from
the L-1 level by using a procedure for joining two itemsets into a larger
one.  Candidates that are more frequent than a predefined threshold are
retained."  The paper's adaptations, all implemented here:

* the first level is **seeded with the 2-pair correlations** from the
  signal cross-correlation function rather than all attributes — this is
  the hybrid step that keeps the miner tractable;
* each item carries a **delay** θ, and joins compose delays
  (θ13 = θ12 + θ23 in the paper's worked example);
* only the **≥ operator** is kept (an outlier in S1 implies outliers in
  the other signals at fixed delays);
* the **Mann-Whitney test** decides when a seeding correlation is
  statistically significant.

Support of an itemset counts complete occurrences: anchor outliers whose
every member signal has an outlier at its delay (± tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro import obs
from repro.mining.correlations import CorrelationChain, GradualItem
from repro.mining.mannwhitney import mann_whitney_u
from repro.signals.crosscorr import (
    PairCorrelation,
    correlate_outlier_trains,
    effective_tolerance,
)


@dataclass
class GriteConfig:
    """Mining thresholds.

    ``max_pair_delay`` bounds the delay searched between two signals (in
    samples); chains may span much longer via delay composition, up to
    ``max_chain_span``.  ``min_support`` / ``min_confidence`` prune the
    tree; ``alpha`` is the Mann-Whitney significance level.
    ``max_train_size`` skips hyperactive signals whose outlier trains are
    too dense to carry timing information (pure noise floors).
    """

    max_pair_delay: int = 360
    tolerance: int = 2
    rel_tolerance: float = 0.35
    min_support: int = 5
    min_confidence: float = 0.3
    alpha: float = 0.05
    #: chance-surprise level: a pair must beat the binomial tail
    #: probability of its matches arising from an unrelated train.  This
    #: guards the argmax-over-delays multiple-comparison problem, which
    #: the rank test alone cannot (and keeps small-sample chains that the
    #: rank test has no power on — 3 exact matches of a rare pair are
    #: overwhelming evidence even though n=3 caps the Mann-Whitney p).
    alpha_chance: float = 1e-6
    #: a pair whose match window catches an unrelated B-outlier with
    #: probability above this carries no timing information (wide window
    #: over a dense train) — reject regardless of the tail probability,
    #: which multiple comparisons across ~10⁴ pairs × 360 delays can fake.
    max_chance_hit: float = 0.2
    #: Mann-Whitney is only demanded when the anchor train is large
    #: enough for the rank test to have power.
    mw_min_samples: int = 20
    #: a chain extension must retain at least this fraction of its
    #: parent's confidence; spurious tails dilute confidence sharply
    #: while genuine syndrome members keep it.
    min_extension_ratio: float = 0.7
    max_chain_size: int = 16
    max_chain_span: int = 720
    max_train_size: int = 20000
    #: per-level candidate budget: when a join level would exceed it,
    #: only the best-supported candidates survive.  Densely interlinked
    #: event cliques otherwise multiply delay-variant chains
    #: combinatorially (gigabytes of near-duplicates).
    max_level_candidates: int = 512
    maximal_only: bool = True


class GriteMiner:
    """Level-wise gradual-itemset miner over per-event outlier trains."""

    def __init__(self, config: Optional[GriteConfig] = None) -> None:
        self.config = config or GriteConfig()
        #: pair correlations found during seeding (observability/ablation)
        self.seed_pairs: List[Tuple[int, int, PairCorrelation]] = []

    # -- public API ---------------------------------------------------------

    def mine(
        self, trains: Mapping[int, np.ndarray]
    ) -> List[CorrelationChain]:
        """Mine correlation chains from outlier trains.

        ``trains`` maps event-type id to the sorted sample indices of its
        outliers.  Returns chains sorted by (size desc, support desc); with
        ``maximal_only`` only chains not contained in a larger one are
        kept (sub-chains are implied).
        """
        cfg = self.config
        with obs.span("mine", trains=len(trains)) as sp:
            trains = {
                tid: np.asarray(t, dtype=np.int64)
                for tid, t in trains.items()
                if 0 < len(t) <= cfg.max_train_size
            }
            with obs.span("seed", trains=len(trains)) as ssp:
                pairs = self._seed_pairs(trains)
                ssp["pairs"] = len(self.seed_pairs)
            with obs.span("grow") as gsp:
                level = self._pairs_to_chains(pairs, trains)
                all_frequent: Dict[Tuple, CorrelationChain] = {
                    self._key(c): c for c in level
                }
                while level and level[0].size < cfg.max_chain_size:
                    level = self._grow(level, pairs, trains, all_frequent)
                gsp["frequent"] = len(all_frequent)
            chains = list(all_frequent.values())
            n_frequent = len(chains)
            if cfg.maximal_only:
                chains = self._maximal(chains)
            chains.sort(key=lambda c: (-c.size, -c.support))
            sp["chains"] = len(chains)
        obs.counter("mining.seed_pairs").inc(len(self.seed_pairs))
        obs.counter("mining.chains_generated").inc(n_frequent)
        obs.counter("mining.chains_pruned_maximal").inc(
            n_frequent - len(chains)
        )
        return chains

    # -- seeding --------------------------------------------------------------

    def _seed_pairs(
        self, trains: Mapping[int, np.ndarray]
    ) -> Dict[int, List[Tuple[int, PairCorrelation]]]:
        """All significant 2-pair correlations, indexed by source event.

        This is the signal-analysis half of the hybrid: the cross
        correlation of outlier trains proposes (delay, strength) per
        ordered pair, then the Mann-Whitney test filters chance
        co-occurrences.
        """
        cfg = self.config
        self.seed_pairs = []
        by_src: Dict[int, List[Tuple[int, PairCorrelation]]] = {}
        tids = sorted(trains)
        horizon = max(
            (int(t[-1]) + 1 for t in trains.values() if t.size), default=1
        )
        for a in tids:
            ta = trains[a]
            for b in tids:
                if a == b:
                    continue
                pc = correlate_outlier_trains(
                    ta,
                    trains[b],
                    max_lag=cfg.max_pair_delay,
                    tolerance=cfg.tolerance,
                    rel_tolerance=cfg.rel_tolerance,
                    min_matches=cfg.min_support,
                )
                if pc is None or pc.strength < cfg.min_confidence:
                    continue
                if pc.delay == 0 and b < a:
                    continue  # zero-delay pairs kept once (symmetric)
                p_hit, p_tail = self._chance_probability(pc, horizon)
                if p_hit > cfg.max_chance_hit or p_tail >= cfg.alpha_chance:
                    continue
                if ta.size >= cfg.mw_min_samples:
                    mw = self._pair_significance(ta, trains[b], pc.delay)
                    if mw.p_value >= cfg.alpha:
                        continue
                entry = (b, pc)
                by_src.setdefault(a, []).append(entry)
                self.seed_pairs.append((a, b, pc))
        return by_src

    def _chance_probability(
        self, pc: PairCorrelation, horizon: int
    ) -> Tuple[float, float]:
        """Chance model of a pair: (per-anchor hit prob, binomial tail).

        An A-outlier matches by chance when an unrelated B-outlier lands
        in its ``2w+1``-sample window, with B modeled as Poisson at its
        empirical density.  The tail is P(≥ n_matches) under that chance
        model — small tails mean the observed matches cannot be
        argmax-over-delays luck.
        """
        w = effective_tolerance(
            pc.delay, self.config.tolerance, self.config.rel_tolerance
        )
        density = pc.n_b / max(1, horizon)
        p_hit = 1.0 - float(np.exp(-density * (2 * w + 1)))
        p_tail = float(_scipy_stats.binom.sf(pc.n_matches - 1, pc.n_a, p_hit))
        return p_hit, p_tail

    def _pair_significance(
        self, ta: np.ndarray, tb: np.ndarray, delay: int
    ):
        """Mann-Whitney test: matches at ``delay`` vs a control delay.

        x = distance from each anchor outlier (shifted by the candidate
        delay) to the nearest B outlier; y = the same with a control
        shift.  A real correlation makes x stochastically *smaller*.
        """
        control = delay + self.config.max_pair_delay + 7
        x = self._nearest_distance(ta + delay, tb)
        y = self._nearest_distance(ta + control, tb)
        return mann_whitney_u(x, y, alternative="less")

    @staticmethod
    def _nearest_distance(points: np.ndarray, train: np.ndarray) -> np.ndarray:
        """Distance from each point to the nearest train element."""
        idx = np.searchsorted(train, points)
        left = np.abs(points - train[np.clip(idx - 1, 0, train.size - 1)])
        right = np.abs(train[np.clip(idx, 0, train.size - 1)] - points)
        return np.minimum(left, right).astype(np.float64)

    def _pairs_to_chains(
        self,
        pairs: Dict[int, List[Tuple[int, PairCorrelation]]],
        trains: Mapping[int, np.ndarray],
    ) -> List[CorrelationChain]:
        """Level 2: one chain per significant pair."""
        out: List[CorrelationChain] = []
        for a, lst in pairs.items():
            for b, pc in lst:
                items = (GradualItem(0, a), GradualItem(pc.delay, b))
                if items[0].event_type == items[1].event_type:
                    continue
                mw = self._pair_significance(trains[a], trains[b], pc.delay)
                chain = CorrelationChain(
                    items=items,
                    support=pc.n_matches,
                    confidence=pc.strength,
                    p_value=mw.p_value,
                )
                out.append(chain)
        return out

    # -- growth ---------------------------------------------------------------

    def _grow(
        self,
        level: List[CorrelationChain],
        pairs: Dict[int, List[Tuple[int, PairCorrelation]]],
        trains: Mapping[int, np.ndarray],
        all_frequent: Dict[Tuple, CorrelationChain],
    ) -> List[CorrelationChain]:
        """Build level L+1 by extending chains through seed pairs.

        A chain containing (Sa, d) joined with the pair Sa →θ Sb yields
        the candidate chain + (Sb, d + θ) — this composes delays exactly
        like the paper's θ12 + θ23 example and also covers the classic
        sibling join (Sa = anchor).
        """
        cfg = self.config
        next_level: List[CorrelationChain] = []
        seen: set = set()
        for chain in level:
            for item in chain.items:
                for b, pc in pairs.get(item.event_type, ()):  # Sa -> Sb
                    new_delay = item.delay + pc.delay
                    if new_delay > cfg.max_chain_span:
                        continue
                    if any(it.event_type == b for it in chain.items):
                        continue
                    items = chain.items + (GradualItem(new_delay, b),)
                    cand = CorrelationChain(items=items, p_value=chain.p_value)
                    key = self._key(cand)
                    if key in seen or key in all_frequent:
                        continue
                    seen.add(key)
                    support, confidence = self._count_support(cand, trains)
                    if (
                        support < cfg.min_support
                        or confidence < cfg.min_confidence
                        or confidence < cfg.min_extension_ratio * chain.confidence
                    ):
                        continue
                    cand = cand.with_stats(support, confidence, chain.p_value)
                    next_level.append(cand)
                    all_frequent[key] = cand
        if len(next_level) > cfg.max_level_candidates:
            next_level.sort(key=lambda c: (-c.support, -c.confidence))
            for dropped in next_level[cfg.max_level_candidates:]:
                all_frequent.pop(self._key(dropped), None)
            next_level = next_level[: cfg.max_level_candidates]
        return next_level

    def _count_support(
        self, chain: CorrelationChain, trains: Mapping[int, np.ndarray]
    ) -> Tuple[int, float]:
        """Complete-pattern support and confidence of a chain."""
        anchors = trains.get(chain.anchor)
        if anchors is None or anchors.size == 0:
            return 0, 0.0
        ok = np.ones(anchors.size, dtype=bool)
        for item in chain.items[1:]:
            tb = trains.get(item.event_type)
            if tb is None or tb.size == 0:
                return 0, 0.0
            tol = effective_tolerance(
                item.delay, self.config.tolerance, self.config.rel_tolerance
            )
            lo = np.searchsorted(tb, anchors + item.delay - tol, side="left")
            hi = np.searchsorted(tb, anchors + item.delay + tol, side="right")
            ok &= hi > lo
            if not ok.any():
                return 0, 0.0
        support = int(ok.sum())
        return support, support / anchors.size

    def chain_span_quantiles(
        self,
        chain: CorrelationChain,
        trains: Mapping[int, np.ndarray],
        quantiles: Tuple[float, float, float] = (0.1, 0.5, 0.9),
    ) -> Optional[Tuple[int, int, int]]:
        """Observed first-symptom→last-event span quantiles (samples).

        The chain's nominal delays are the modal values; real occurrences
        jitter around them.  The measured span distribution gives each
        chain its own *adaptive prediction window* — the per-event-type
        window of the authors' earlier SLAML'11 work [12] — which the
        online engine uses as a prediction interval instead of a point
        estimate.  Returns ``None`` when no complete occurrence exists.
        """
        anchors = self.match_anchor_times(chain, trains)
        if anchors.size == 0:
            return None
        last = chain.items[-1]
        tb = np.asarray(trains.get(last.event_type, ()), dtype=np.int64)
        if tb.size == 0:
            return None
        tol = effective_tolerance(
            last.delay, self.config.tolerance, self.config.rel_tolerance
        )
        spans = []
        for t in anchors:
            lo = np.searchsorted(tb, t + last.delay - tol, side="left")
            hi = np.searchsorted(tb, t + last.delay + tol, side="right")
            if hi > lo:
                # latest matching occurrence of the final event
                spans.append(int(tb[hi - 1] - t))
        if not spans:
            return None
        q = np.quantile(np.asarray(spans, dtype=float), quantiles)
        return int(q[0]), int(q[1]), int(q[2])

    def match_anchor_times(
        self, chain: CorrelationChain, trains: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Anchor sample indices of every complete chain occurrence.

        Used by the location module to look up which nodes logged the
        chain's events around each occurrence.
        """
        anchors = np.asarray(trains.get(chain.anchor, ()), dtype=np.int64)
        if anchors.size == 0:
            return anchors
        ok = np.ones(anchors.size, dtype=bool)
        for item in chain.items[1:]:
            tb = np.asarray(trains.get(item.event_type, ()), dtype=np.int64)
            if tb.size == 0:
                return np.empty(0, dtype=np.int64)
            tol = effective_tolerance(
                item.delay, self.config.tolerance, self.config.rel_tolerance
            )
            lo = np.searchsorted(tb, anchors + item.delay - tol, side="left")
            hi = np.searchsorted(tb, anchors + item.delay + tol, side="right")
            ok &= hi > lo
        return anchors[ok]

    # -- bookkeeping -------------------------------------------------------------

    @staticmethod
    def _key(chain: CorrelationChain) -> Tuple:
        """Dedup key: the event-type *set*.

        Delay variants of the same syndrome (the same events reached
        through different join orders) are one itemset; keying on exact
        delays lets dense event cliques multiply delay permutations into
        a combinatorial explosion.  The first variant found wins —
        growth explores high-support chains first, and the end-stage
        maximal filter collapses by event set regardless.
        """
        return tuple(sorted(it.event_type for it in chain.items))

    def _maximal(
        self, chains: List[CorrelationChain]
    ) -> List[CorrelationChain]:
        """Collapse to maximal syndromes.

        Two passes: (1) chains over the *same* event-type set are
        near-duplicates differing only in delay jitter / event ordering —
        keep the best-supported one; (2) a chain whose event set is a
        strict subset of a kept chain's is implied by it and dropped.
        This is what turns the paper's "62" compact hybrid set out of the
        hundreds of raw frequent itemsets.
        """
        best: Dict[frozenset, CorrelationChain] = {}
        for c in chains:
            key = frozenset(c.event_types)
            cur = best.get(key)
            if cur is None or (c.support, c.confidence) > (
                cur.support, cur.confidence
            ):
                best[key] = c
        by_size = sorted(best.items(), key=lambda kv: -len(kv[0]))
        kept: List[CorrelationChain] = []
        kept_sets: List[frozenset] = []
        for key, c in by_size:
            if any(key < s for s in kept_sets):
                continue
            kept.append(c)
            kept_sets.append(key)
        return kept
