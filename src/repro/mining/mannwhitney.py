"""Mann-Whitney U test, implemented from scratch.

"We use the Mann Whitney test [22] to decide when a correlation is
statistically significant." (section III.C).  The miner compares, for a
candidate (pair, delay), the match quality observed at that delay against
the quality at a shifted control delay; the one-sided U test decides
whether the candidate is genuinely better than chance.

The implementation uses the normal approximation with tie correction and
continuity correction — exact for the sample sizes outlier trains produce
(tens to thousands of points).  ``scipy.stats.mannwhitneyu`` exists, but a
substrate of the paper is reimplemented rather than imported; the test
suite cross-checks this implementation against scipy's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class MannWhitneyResult:
    """U statistic, z score and one/two-sided p-value."""

    u_statistic: float
    z_score: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Reject the null at level ``alpha``."""
        return self.p_value < alpha


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Midranks (average ranks for ties), 1-based."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal via erfc."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mann_whitney_u(
    x: Sequence[float],
    y: Sequence[float],
    alternative: str = "greater",
) -> MannWhitneyResult:
    """Mann-Whitney U test of ``x`` against ``y``.

    ``alternative``:

    * ``"greater"`` — x tends to exceed y (one-sided);
    * ``"less"`` — x tends to fall below y (one-sided);
    * ``"two-sided"``.

    The U statistic reported is U of the ``x`` sample.  Degenerate inputs
    (either sample empty, or all values tied) return ``p_value = 1.0``.
    """
    if alternative not in ("greater", "less", "two-sided"):
        raise ValueError(f"unknown alternative {alternative!r}")
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n1, n2 = x.size, y.size
    if n1 == 0 or n2 == 0:
        return MannWhitneyResult(u_statistic=0.0, z_score=0.0, p_value=1.0)

    combined = np.concatenate([x, y])
    ranks = _rankdata(combined)
    r1 = float(ranks[:n1].sum())
    u1 = r1 - n1 * (n1 + 1) / 2.0

    mean_u = n1 * n2 / 2.0
    # Tie correction for the variance.
    _, tie_counts = np.unique(combined, return_counts=True)
    n = n1 + n2
    tie_term = float(np.sum(tie_counts**3 - tie_counts))
    var_u = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1))) if n > 1 else 0.0
    if var_u <= 0:
        return MannWhitneyResult(u_statistic=u1, z_score=0.0, p_value=1.0)

    sd = math.sqrt(var_u)
    if alternative == "greater":
        z = (u1 - mean_u - 0.5) / sd
        p = _normal_sf(z)
    elif alternative == "less":
        z = (u1 - mean_u + 0.5) / sd
        p = _normal_sf(-z)
    else:
        z = (u1 - mean_u - math.copysign(0.5, u1 - mean_u)) / sd if u1 != mean_u else 0.0
        p = 2.0 * _normal_sf(abs(z))
        p = min(1.0, p)
    return MannWhitneyResult(u_statistic=float(u1), z_score=float(z), p_value=float(p))
