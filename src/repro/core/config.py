"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.helo.miner import MinerConfig
from repro.mining.grite import GriteConfig
from repro.prediction.engine import PredictorConfig
from repro.resilience.config import ResilienceConfig


@dataclass
class PipelineConfig:
    """End-to-end knobs of the ELSA pipeline.

    ``sampling_period`` is the paper's 10-second unit.
    ``use_mined_templates`` switches between HELO-mined event types (the
    production path) and the generator's ground-truth ids (useful for
    ablating template-mining error out of downstream results).
    ``online_keep_seconds`` bounds the online signal history ("we keep
    only the last two months in the on-line module"); scaled scenarios
    keep proportionally less.
    ``resilience`` enables the hardened ingestion path: records entering
    ``fit``/``make_stream`` are sanitized through a
    :class:`~repro.resilience.stream.ResilientStream` (quarantine,
    dedupe, reorder, gap sentinels).  ``None`` (the default) bypasses it
    entirely, keeping the clean-input pipeline byte-identical.
    """

    sampling_period: float = 10.0
    use_mined_templates: bool = True
    online_keep_seconds: float = 14 * 86400.0
    miner: MinerConfig = field(default_factory=MinerConfig)
    grite: GriteConfig = field(default_factory=GriteConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    resilience: Optional[ResilienceConfig] = None
