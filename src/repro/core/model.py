"""The trained (offline-phase) model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.helo.template import TemplateTable
from repro.location.propagation import ChainLocationProfile, LocationPredictor
from repro.mining.correlations import CorrelationChain
from repro.signals.characterize import NormalBehavior
from repro.simulation.trace import Severity


@dataclass
class TrainedModel:
    """Everything the offline phase learns.

    ``chains`` holds every mined correlation chain;
    ``predictive_chains`` the subset surviving the severity filter
    (section IV.A discards chains whose members are all INFO — restart
    sequences, multiline dumps and other informational structure, about
    23 % of the total); ``info_chains`` is that discarded remainder, kept
    for the §IV.A statistics.
    """

    table: Optional[TemplateTable]
    n_types: int
    behaviors: Dict[int, NormalBehavior]
    trains: Dict[int, np.ndarray]
    chains: List[CorrelationChain]
    predictive_chains: List[CorrelationChain]
    info_chains: List[CorrelationChain]
    severities: Dict[int, Severity]
    profiles: List[ChainLocationProfile]
    location_predictor: LocationPredictor
    seed_pairs: List[Tuple[int, int, object]]
    t_train_start: float
    t_train_end: float
    #: per-chain observed span quantiles (q10, q50, q90) in samples —
    #: the adaptive prediction windows the online engine emits as
    #: intervals (keyed like the engine's chain keys)
    span_quantiles: Dict[Tuple, Tuple[int, int, int]] = field(
        default_factory=dict
    )

    @property
    def info_chain_fraction(self) -> float:
        """Fraction of chains with no predictive potential (§IV.A ~23 %)."""
        if not self.chains:
            return 0.0
        return len(self.info_chains) / len(self.chains)

    def event_name(self, event_type: int) -> str:
        """Human-readable name of an event type (template skeleton)."""
        if self.table is not None:
            return self.table[event_type].skeleton()
        return f"event<{event_type}>"

    def describe_chain(self, chain: CorrelationChain) -> str:
        """Render a chain in the paper's Table I listing style."""
        names = (
            self.table.skeletons() if self.table is not None
            else [f"event<{i}>" for i in range(self.n_types)]
        )
        return chain.describe(names)
