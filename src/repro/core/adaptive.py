"""Online correlation adaptation (the paper's section III.C direction).

"Systems experience software upgrades, configuration changes, and even
installation of new components during their lifetime.  These make it
difficult for the algorithms to learn patterns since the system will
experience phase shifts in behavior." (section I) … "We plan to
investigate the use of such methods on-line in order to adapt
correlations to changes in the system." (section III.C)

:class:`AdaptiveELSA` implements that loop: the online phase is replayed
in fixed *update intervals*; after each interval the correlation model is
re-learned over a trailing window (bounded by the pipeline's
``online_keep_seconds``, the paper's two-month memory).  Template ids
stay stable — online HELO classifies the new messages and may mint new
templates for message shapes that appeared after an upgrade — so chains
learned earlier remain valid while chains for *new* failure modes appear
as soon as one update window has seen enough instances.

A static model trained before a phase shift scores zero recall on the
new failure mode forever; the adaptive model converges to normal recall
after roughly one update interval — the contrast
``benchmarks/bench_ablation_adaptive.py`` measures on the latent
fan-degradation scenario.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.elsa import ELSA
from repro.core.model import TrainedModel
from repro.prediction.engine import Prediction
from repro.simulation.trace import LogRecord


class AdaptiveELSA(ELSA):
    """ELSA with periodic online re-learning of the correlation model."""

    def predict_adaptive(
        self,
        records: Sequence[LogRecord],
        t_start: float,
        t_end: float,
        update_interval: float = 86400.0,
        keep_seconds: Optional[float] = None,
    ) -> List[Prediction]:
        """Predict over ``[t_start, t_end)`` with periodic model updates.

        Each interval is predicted with the *current* model (no
        lookahead), then the model is re-learned on the trailing window
        ending at the interval boundary.  Returns all predictions, in
        emission order.
        """
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        self._require_model()
        predictions: List[Prediction] = []
        #: model refresh timeline, for observability in tests/benches
        self.update_times: List[float] = []
        t = t_start
        while t < t_end:
            chunk_end = min(t + update_interval, t_end)
            stream = self.make_stream(records, t, chunk_end)
            predictor = self.hybrid_predictor()
            predictions.extend(predictor.run(stream))
            if chunk_end < t_end:
                self.update_model(records, now=chunk_end,
                                  keep_seconds=keep_seconds)
                self.update_times.append(chunk_end)
            t = chunk_end
        predictions.sort(key=lambda p: p.emitted_at)
        return predictions

    def update_model(
        self,
        records: Sequence[LogRecord],
        now: float,
        keep_seconds: Optional[float] = None,
    ) -> TrainedModel:
        """Re-learn the correlation model on the trailing window.

        The window spans ``[now - keep_seconds, now)`` — "we keep only
        the last two months in the on-line module" — and is classified
        with the *online* HELO table so event-type ids stay stable
        across updates (new message shapes mint new ids at the end).

        The re-learn itself is :meth:`~repro.core.elsa.ELSA.learn_candidate`;
        this method is the adopt-unconditionally policy around it (the
        self-healing lifecycle loop validates before adopting instead).
        """
        keep = keep_seconds if keep_seconds is not None else (
            self.config.online_keep_seconds
        )
        t0 = max(0.0, now - keep)
        self.model = self.learn_candidate(records, t0, now)
        return self.model
