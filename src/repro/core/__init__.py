"""ELSA core: the offline/online pipeline facade (Fig. 2).

:class:`repro.core.elsa.ELSA` wires the substrates together exactly as
the paper's methodology overview does:

offline — raw log → HELO templates → per-event signals → normal-behaviour
characterization → offline outlier detection → cross-correlation seeding →
GRITE chain mining → severity filtering → location profiles;

online — stream classification (online HELO) → causal outlier detection →
chain triggering → location prediction → prediction windows.
"""

from repro.core.config import PipelineConfig
from repro.core.model import TrainedModel
from repro.core.elsa import ELSA
from repro.core.adaptive import AdaptiveELSA

__all__ = ["PipelineConfig", "TrainedModel", "ELSA", "AdaptiveELSA"]
