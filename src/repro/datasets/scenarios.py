"""Scenario builders mirroring the paper's two systems.

The paper trains on the first ~3 of 7–10 months of logs; the scaled
default here trains on the first ~30 % of a multi-day scenario.  All
randomness is seeded, so a (builder, seed) pair is a reproducible
dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.simulation.faults import (
    FaultCatalog,
    bluegene_fault_catalog,
    mercury_fault_catalog,
)
from repro.simulation.generator import GeneratorConfig, LogGenerator
from repro.simulation.templates import (
    TemplateCatalog,
    bluegene_templates,
    mercury_templates,
)
from repro.simulation.topology import (
    Machine,
    build_bluegene_machine,
    build_cluster_machine,
)
from repro.simulation.trace import GroundTruth, LogRecord
from repro.simulation.workload import PeriodicEmitter, WorkloadConfig


@dataclass
class Scenario:
    """A generated dataset: machine + records + ground truth + split."""

    name: str
    machine: Machine
    templates: TemplateCatalog
    faults: FaultCatalog
    records: List[LogRecord]
    ground_truth: GroundTruth
    train_end: float
    t_end: float

    @property
    def train_records(self) -> List[LogRecord]:
        """Records inside the training window."""
        return [r for r in self.records if r.timestamp < self.train_end]

    @property
    def test_records(self) -> List[LogRecord]:
        """Records inside the test window."""
        return [r for r in self.records if r.timestamp >= self.train_end]

    @property
    def test_faults(self):
        """Ground-truth faults whose failure lands in the test window."""
        return self.ground_truth.in_window(self.train_end, self.t_end)


def bluegene_scenario(
    duration_days: float = 7.0,
    train_fraction: float = 0.3,
    seed: int = 0,
    fault_rate_scale: float = 1.0,
    base_rate_per_sec: float = 0.5,
    latent_fault_day: Optional[float] = None,
) -> Scenario:
    """Blue Gene/L-like scenario (hierarchical machine, BG fault mix).

    Defaults give ~150k records and ~900 faults over a week — large
    enough for stable Table III statistics, small enough for a laptop.
    ``latent_fault_day`` switches on the fan-degradation phase shift at
    that day (see :func:`repro.simulation.faults.bluegene_fault_catalog`),
    for evaluating online correlation adaptation.
    """
    machine = build_bluegene_machine()
    templates = bluegene_templates()
    faults = bluegene_fault_catalog(latent_start_day=latent_fault_day)
    workload = WorkloadConfig(
        base_rate_per_sec=base_rate_per_sec,
        burst_templates=("info.app_output",),
        burst_rate_per_day=1.5,
        # Noise floors under cache/network precursors: benign correctable
        # blips drown the real symptoms, reproducing the low cache and
        # network recall of Fig. 9.
        ambient_error_rates={
            "cache.parity_corrected": 0.02,
            "net.torus_retrans": 0.0065,
            # Rare benign occurrences of otherwise fault-only precursors:
            # they cap chain confidence below 1 and produce the ~9 % of
            # false predictions the paper's 91.2 % precision implies.
            "mem.correctable_dir": 2e-5,
            "io.ciod_strm": 2e-5,
            "net.rx_crc": 2e-5,
            "card.bit_sparing": 1e-5,
            "cache.dcache_parity": 4e-5,
        },
        # Fast service-node heartbeat: its *absence* is the node-crash
        # syndrome, so the beat must be quick relative to the crash lead.
        extra_emitters=[PeriodicEmitter("info.heartbeat", period=60.0)],
    )
    cfg = GeneratorConfig(
        duration_days=duration_days,
        seed=seed,
        fault_rate_scale=fault_rate_scale,
        workload=workload,
    )
    records, gt = LogGenerator(machine, templates, faults, cfg).generate()
    return Scenario(
        name="bluegene-like",
        machine=machine,
        templates=templates,
        faults=faults,
        records=records,
        ground_truth=gt,
        train_end=duration_days * 86400.0 * train_fraction,
        t_end=duration_days * 86400.0,
    )


def mercury_scenario(
    duration_days: float = 7.0,
    train_fraction: float = 0.3,
    seed: int = 0,
    fault_rate_scale: float = 1.0,
    base_rate_per_sec: float = 0.5,
    n_nodes: int = 256,
) -> Scenario:
    """Mercury-like scenario (flat cluster, NFS-heavy fault mix)."""
    machine = build_cluster_machine(n_nodes=n_nodes)
    templates = mercury_templates()
    faults = mercury_fault_catalog()
    workload = WorkloadConfig(
        base_rate_per_sec=base_rate_per_sec,
        burst_templates=("info.sshd",),
        burst_rate_per_day=1.0,
    )
    cfg = GeneratorConfig(
        duration_days=duration_days,
        seed=seed,
        fault_rate_scale=fault_rate_scale,
        workload=workload,
    )
    records, gt = LogGenerator(machine, templates, faults, cfg).generate()
    return Scenario(
        name="mercury-like",
        machine=machine,
        templates=templates,
        faults=faults,
        records=records,
        ground_truth=gt,
        train_end=duration_days * 86400.0 * train_fraction,
        t_end=duration_days * 86400.0,
    )


def tiny_scenario(seed: int = 0) -> Scenario:
    """A minutes-long Blue Gene-like scenario for fast tests.

    One day of simulated time, reduced background, boosted fault rates so
    every category appears; end-to-end pipeline runs in a few seconds.
    """
    return bluegene_scenario(
        duration_days=1.0,
        train_fraction=0.4,
        seed=seed,
        fault_rate_scale=1.5,
        base_rate_per_sec=0.2,
    )
