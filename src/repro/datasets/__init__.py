"""Canned scenarios: one call from nothing to records + ground truth."""

from repro.datasets.scenarios import (
    Scenario,
    bluegene_scenario,
    mercury_scenario,
    tiny_scenario,
)

__all__ = [
    "Scenario",
    "bluegene_scenario",
    "mercury_scenario",
    "tiny_scenario",
]
