"""Programmatic reproduction reports (Table III, Fig. 9, Table IV).

The benchmark harness regenerates every paper table/figure under pytest;
this module exposes the headline ones as plain library calls so a user
(or ``elsa-repro reproduce``) can produce a markdown reproduction report
with one invocation — no test runner involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.checkpoint import CheckpointParams, waste_gain
from repro.core.elsa import ELSA
from repro.datasets.scenarios import Scenario, bluegene_scenario
from repro.prediction.evaluation import (
    EvaluationResult,
    evaluate_predictions,
)
from repro.viz import bar_chart

#: Table IV rows: (C minutes, precision, recall, MTTF minutes, paper %)
TABLE4_ROWS: Tuple[Tuple[float, float, float, float, float], ...] = (
    (1.0, 0.92, 0.20, 1440.0, 9.13),
    (1.0, 0.92, 0.36, 1440.0, 17.33),
    (10 / 60, 0.92, 0.36, 1440.0, 12.09),
    (10 / 60, 0.92, 0.45, 1440.0, 15.63),
    (1.0, 0.92, 0.50, 300.0, 21.74),
    (10 / 60, 0.92, 0.65, 300.0, 24.78),
)

#: The paper's Table III values, for side-by-side rendering.
PAPER_TABLE3 = {
    "hybrid": (0.912, 0.458),
    "signal": (0.881, 0.405),
    "datamining": (0.919, 0.157),
}


@dataclass
class MethodResult:
    """One Table III row: a method's evaluation on the test window."""

    name: str
    result: EvaluationResult
    n_chains: int


def run_methods(
    scenario: Scenario, elsa: Optional[ELSA] = None
) -> List[MethodResult]:
    """Fit (if needed) and evaluate the three Table III methods."""
    if elsa is None:
        elsa = ELSA(scenario.machine)
        elsa.fit(scenario.records, t_train_end=scenario.train_end)
    stream = elsa.make_stream(
        scenario.records, scenario.train_end, scenario.t_end
    )
    methods = {
        "hybrid": elsa.hybrid_predictor(),
        "signal": elsa.signal_predictor(),
        "datamining": elsa.datamining_predictor(scenario.records),
    }
    out: List[MethodResult] = []
    for name, predictor in methods.items():
        predictions = predictor.run(stream)
        n_set = len(getattr(predictor, "chains", None) or predictor.rules)
        result = evaluate_predictions(
            predictions,
            scenario.test_faults,
            chains_total=n_set,
            chain_usage=predictor.chain_usage,
            n_too_late=predictor.n_too_late,
        )
        out.append(MethodResult(name=name, result=result, n_chains=n_set))
    return out


def render_table3(methods: List[MethodResult]) -> str:
    """Markdown Table III with the paper's values alongside."""
    lines = [
        "| method | precision | recall | paper P/R | chains used |",
        "|---|---|---|---|---|",
    ]
    for m in methods:
        paper = PAPER_TABLE3.get(m.name)
        paper_s = f"{paper[0]:.1%} / {paper[1]:.1%}" if paper else "—"
        lines.append(
            f"| {m.name} | {m.result.precision:.1%} | {m.result.recall:.1%} "
            f"| {paper_s} | {m.result.chains_used}/{m.n_chains} |"
        )
    return "\n".join(lines)


def render_fig9(result: EvaluationResult) -> str:
    """The recall-per-category breakdown as a terminal bar chart."""
    data = {
        cat: stats.recall
        for cat, stats in sorted(result.per_category.items())
    }
    return bar_chart(data, width=32)


def render_table4() -> str:
    """Markdown Table IV: paper vs the closed-form model."""
    lines = [
        "| C | precision | recall | MTTF | measured gain | paper |",
        "|---|---|---|---|---|---|",
    ]
    for C, P, N, mttf, paper in TABLE4_ROWS:
        params = CheckpointParams(checkpoint_time=C, mttf=mttf)
        gain = 100 * waste_gain(params, N, P)
        c_label = "1 min" if C == 1.0 else "10 s"
        mttf_label = "1 day" if mttf == 1440.0 else "5 h"
        lines.append(
            f"| {c_label} | {P:.0%} | {N:.0%} | {mttf_label} "
            f"| {gain:.2f}% | {paper:.2f}% |"
        )
    return "\n".join(lines)


def histogram_quantile(hist: dict, q: float) -> float:
    """Quantile estimate from a dumped histogram's cumulative buckets.

    ``hist`` is a :class:`repro.obs.metrics.Histogram` ``to_dict``:
    per-bucket ``counts`` (last entry the +inf bucket) over upper-bound
    ``buckets``.  The estimate interpolates linearly inside the bucket
    that crosses rank ``q * count``; the open +inf bucket reports the
    observed ``max`` (the only bound it has).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    bounds = list(hist.get("buckets", ()))
    counts = list(hist.get("counts", ()))
    total = hist.get("count", 0)
    if not total or len(counts) != len(bounds) + 1:
        return float("nan")
    rank = q * total
    cum = 0
    estimate = None
    for i, c in enumerate(counts[:-1]):
        prev = cum
        cum += c
        if cum >= rank:
            lo = bounds[i - 1] if i else min(hist.get("min", 0.0), bounds[0])
            hi = bounds[i]
            frac = (rank - prev) / c if c else 1.0
            estimate = lo + frac * (hi - lo)
            break
    mx = hist.get("max")
    if estimate is None:
        return float(mx) if mx is not None else bounds[-1]
    # interpolation can overshoot the data inside a sparse bucket; the
    # registry tracks the true extremes, so clamp to them.
    if mx is not None:
        estimate = min(estimate, float(mx))
    mn = hist.get("min")
    if mn is not None:
        estimate = max(estimate, float(mn))
    return estimate


def _render_span_dict(
    node: dict, indent: int = 0, t_base: Optional[float] = None
) -> List[str]:
    """One line per span of an exported (JSON) span tree.

    Shows each span's start offset from the root (spans carry wall-clock
    ``t_start``), marks spans still open at export time (``done``
    false — a live ``/state`` snapshot can contain them), and calls out
    watchdog overruns (``deadline_exceeded``, set by the span's soft
    deadline) as an explicit marker instead of burying the flag among
    the attributes.
    """
    node_attrs = dict(node.get("attrs", {}))
    deadline_exceeded = bool(node_attrs.pop("deadline_exceeded", False))
    attrs = " ".join(f"{k}={v}" for k, v in sorted(node_attrs.items()))
    t_start = node.get("t_start")
    if t_base is None and t_start is not None:
        t_base = t_start
    line = (
        "  " * indent
        + f"{node['name']}  {node.get('wall_seconds', 0.0) * 1000:.1f}ms"
    )
    if t_start is not None and t_base is not None:
        line += f"  @+{t_start - t_base:.3f}s"
    if node.get("done") is False:
        line += "  (running)"
    if deadline_exceeded:
        line += "  (deadline exceeded)"
    if attrs:
        line += f"  [{attrs}]"
    lines = [line]
    for child in node.get("children", ()):
        lines.extend(_render_span_dict(child, indent + 1, t_base))
    return lines


def render_observability(state: Dict) -> str:
    """``elsa-repro stats``: an obs dump as metric + stage tables.

    ``state`` is the JSON written by ``--metrics-out`` (or
    :func:`repro.obs.export_state` directly): a metric snapshot plus the
    span forest of the run.
    """
    parts: List[str] = ["## Metrics", ""]
    metrics = state.get("metrics", {})
    if metrics:
        parts += ["| metric | kind | value |", "|---|---|---|"]
        for name, m in sorted(metrics.items()):
            if m.get("kind") == "histogram":
                count = m.get("count", 0)
                mean = (m.get("sum", 0.0) / count) if count else 0.0
                value = (
                    f"n={count} mean={mean:.4g} "
                    f"min={m.get('min')} max={m.get('max')}"
                )
                if count:
                    p50, p90, p99 = (
                        histogram_quantile(m, q) for q in (0.5, 0.9, 0.99)
                    )
                    value += (
                        f" p50={p50:.4g} p90={p90:.4g} p99={p99:.4g}"
                    )
            else:
                value = f"{m.get('value', 0):g}"
            parts.append(f"| {name} | {m.get('kind', '?')} | {value} |")
    else:
        parts.append("(no metrics recorded)")
    spans = state.get("spans", [])
    streams = _collect_spans(spans, "stream")
    if streams:
        parts += ["", "## Throughput", ""]
        total_records = sum(
            int(s.get("attrs", {}).get("records", 0)) for s in streams
        )
        total_wall = sum(float(s.get("wall_seconds", 0.0)) for s in streams)
        if total_wall > 0:
            parts.append(
                f"stream: {total_records} records in {total_wall:.2f}s "
                f"= {total_records / total_wall:,.0f} records/sec"
                + (f" over {len(streams)} calls" if len(streams) > 1 else "")
            )
        else:
            parts.append(f"stream: {total_records} records (no wall time)")
    parts += ["", "## Stage timings", ""]
    if spans:
        parts.append("```")
        for root in spans:
            parts.extend(_render_span_dict(root))
        parts.append("```")
    else:
        parts.append("(no spans recorded)")
    return "\n".join(parts)


def observability_json(state: Dict) -> Dict:
    """``elsa-repro stats --json``: the obs dump as a machine-readable dict.

    Mirrors :func:`render_observability` — same metric snapshot, derived
    histogram quantiles, throughput and span forest — but as plain data
    for scripting (jq, CI gates) instead of markdown tables.
    """
    metrics_out: Dict[str, Dict] = {}
    for name, m in sorted(state.get("metrics", {}).items()):
        entry: Dict = {"kind": m.get("kind", "?")}
        if m.get("kind") == "histogram":
            count = m.get("count", 0)
            entry["count"] = count
            entry["sum"] = m.get("sum", 0.0)
            entry["min"] = m.get("min")
            entry["max"] = m.get("max")
            entry["mean"] = (m.get("sum", 0.0) / count) if count else 0.0
            entry["quantiles"] = {
                str(q): histogram_quantile(m, q) if count else None
                for q in (0.5, 0.9, 0.99)
            }
        else:
            entry["value"] = m.get("value", 0)
        if "series" in m:
            entry["series"] = m["series"]
        metrics_out[name] = entry
    spans = state.get("spans", [])
    streams = _collect_spans(spans, "stream")
    total_records = sum(
        int(s.get("attrs", {}).get("records", 0)) for s in streams
    )
    total_wall = sum(float(s.get("wall_seconds", 0.0)) for s in streams)
    throughput = {
        "records": total_records,
        "wall_seconds": total_wall,
        "records_per_sec": (
            total_records / total_wall if total_wall > 0 else None
        ),
        "calls": len(streams),
    }
    out = {
        "metrics": metrics_out,
        "throughput": throughput,
        "spans": spans,
    }
    if "incidents" in state:
        out["incidents"] = state["incidents"]
    return out


def _collect_spans(roots: List[Dict], name: str) -> List[Dict]:
    """All spans named ``name`` anywhere in a span-dict forest."""
    hits: List[Dict] = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.get("name") == name:
            hits.append(node)
        stack.extend(node.get("children", []))
    return hits


def full_reproduction_report(
    duration_days: float = 7.0, seed: int = 11
) -> str:
    """Markdown report covering Table III, Fig. 9 and Table IV.

    One call, several minutes of compute; the benchmark harness remains
    the exhaustive path (every figure, shape assertions).
    """
    scenario = bluegene_scenario(duration_days=duration_days, seed=seed)
    methods = run_methods(scenario)
    hybrid = next(m for m in methods if m.name == "hybrid")
    parts = [
        "# Reproduction report",
        "",
        f"scenario: {scenario.name}, {duration_days} days, seed {seed}, "
        f"{len(scenario.records)} records, "
        f"{len(scenario.ground_truth)} faults",
        "",
        "## Table III — prediction methods",
        "",
        render_table3(methods),
        "",
        "## Fig. 9 — recall by failure category (hybrid)",
        "",
        "```",
        render_fig9(hybrid.result),
        "```",
        "",
        "## Table IV — checkpoint waste gains (closed form)",
        "",
        render_table4(),
        "",
        "See benchmarks/ for the complete per-figure harness and "
        "EXPERIMENTS.md for the shape contract.",
    ]
    return "\n".join(parts)
