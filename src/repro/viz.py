"""Terminal visualization helpers for signals and distributions.

The paper's figures are signal plots and bar charts; this module renders
their closest terminal-native equivalents (sparklines, bar charts,
histograms) so the examples and benchmark reports can *show* signals —
e.g. a periodic heartbeat with its crash gap, or a noise signal before
and after outlier replacement — without a plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a series as a unicode sparkline.

    ``width`` resamples the series to at most that many characters by
    max-pooling (peaks — the interesting part of count signals — are
    preserved).  Constant series render at mid height.
    """
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        return ""
    if width is not None and width > 0 and x.size > width:
        edges = np.linspace(0, x.size, width + 1).astype(int)
        x = np.array([
            x[a:b].max() if b > a else x[min(a, x.size - 1)]
            for a, b in zip(edges[:-1], edges[1:])
        ])
    lo, hi = float(x.min()), float(x.max())
    if hi <= lo:
        return _SPARK_LEVELS[4] * x.size
    scaled = (x - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(v))] for v in scaled)


def bar_chart(
    data: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:.1%}",
) -> str:
    """Horizontal bar chart, one row per key, scaled to the max value."""
    if not data:
        return "(empty)"
    label_w = max(len(str(k)) for k in data)
    peak = max(data.values()) or 1.0
    lines = []
    for key, value in data.items():
        bar = "█" * int(round(width * value / peak))
        lines.append(
            f"{str(key):<{label_w}} {fmt.format(value):>8} |{bar}"
        )
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: Sequence[float],
    labels: Optional[Sequence[str]] = None,
    width: int = 40,
) -> str:
    """Text histogram over explicit bin edges.

    ``bins`` are the inner edges; values below the first edge go to the
    first bucket, values at or above the last edge to the last bucket.
    """
    x = np.asarray(list(values), dtype=float)
    edges = list(bins)
    counts = [0] * (len(edges) + 1)
    for v in x:
        k = 0
        while k < len(edges) and v >= edges[k]:
            k += 1
        counts[k] += 1
    if labels is None:
        labels = (
            [f"< {edges[0]:g}"]
            + [f"{a:g}-{b:g}" for a, b in zip(edges[:-1], edges[1:])]
            + [f">= {edges[-1]:g}"]
        )
    if len(labels) != len(counts):
        raise ValueError("labels must cover len(bins) + 1 buckets")
    total = max(1, int(x.size))
    return bar_chart(
        {lab: n / total for lab, n in zip(labels, counts)}, width=width
    )


def signal_panel(
    signal: Sequence[float],
    title: str,
    flags: Optional[Sequence[bool]] = None,
    width: int = 72,
) -> str:
    """A Fig. 1-style panel: title, sparkline, and an outlier-marker row."""
    spark = sparkline(signal, width=width)
    lines = [title, spark]
    if flags is not None:
        f = np.asarray(list(flags), dtype=bool)
        if f.size != len(signal):
            raise ValueError("flags must parallel the signal")
        if f.size > width:
            edges = np.linspace(0, f.size, width + 1).astype(int)
            pooled = np.array([
                f[a:b].any() if b > a else f[min(a, f.size - 1)]
                for a, b in zip(edges[:-1], edges[1:])
            ])
        else:
            pooled = f
        lines.append("".join("^" if v else " " for v in pooled))
    return "\n".join(lines)
