"""Columnar record batches: the array-of-structs → struct-of-arrays turn.

A :class:`RecordBatch` holds one contiguous slice of a log stream as
parallel numpy arrays — timestamps (float64), interned location ids
(int32 into a shared string pool), severity codes (int8), and optional
template ids (int64, ``-1`` = unclassified) — plus the raw message
strings.  It is produced **once** at parse time
(:func:`repro.helo.batch.parse_lines_batch` or :meth:`from_records`)
and consumed zero-copy by every downstream stage: template matching
(:meth:`repro.helo.online.OnlineHELO.observe_tokens_batch`), sanitizing
(:func:`repro.resilience.stream.sanitize_batch`), binning and detector
ticking (:meth:`repro.prediction.streaming.StreamingHybridPredictor.feed`),
and fleet shard handoff (:class:`repro.fleet.queue.RecordDeque`).

Slicing is a view (arrays are numpy views, the location pool is
shared); :meth:`take` and :meth:`concat` copy.  :meth:`to_records`
materializes :class:`~repro.simulation.trace.LogRecord` objects for the
scalar path — the equivalence contract is that a round trip through a
batch is lossless, including the ground-truth side channels.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.simulation.trace import LogRecord, Severity

__all__ = ["RecordBatch"]

_NO_SIDE = None


class RecordBatch:
    """A columnar slice of a log stream (struct-of-arrays).

    Parameters are taken by reference, not copied — builders hand over
    ownership.  ``event_types``/``fault_ids`` are plain Python lists (or
    ``None`` meaning "all None"); they are ground-truth side channels
    that never appear on hot paths but must survive a round trip.
    """

    __slots__ = (
        "timestamps",
        "loc_ids",
        "severities",
        "messages",
        "loc_pool",
        "template_ids",
        "event_types",
        "fault_ids",
        "_loc_index",
        "token_lists",
    )

    def __init__(
        self,
        timestamps: np.ndarray,
        loc_ids: np.ndarray,
        severities: np.ndarray,
        messages: List[str],
        loc_pool: List[str],
        template_ids: Optional[np.ndarray] = None,
        event_types: Optional[list] = _NO_SIDE,
        fault_ids: Optional[list] = _NO_SIDE,
        loc_index: Optional[Dict[str, int]] = None,
        token_lists: Optional[list] = None,
    ) -> None:
        self.timestamps = timestamps
        self.loc_ids = loc_ids
        self.severities = severities
        self.messages = messages
        self.loc_pool = loc_pool
        self.template_ids = template_ids
        self.event_types = event_types
        self.fault_ids = fault_ids
        self._loc_index = loc_index
        #: transient: per-record token lists cached by the batch parser
        #: so classification does not re-split messages; never persisted
        self.token_lists = token_lists

    # -- construction --------------------------------------------------------

    @classmethod
    def empty(cls) -> "RecordBatch":
        return cls(
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int8),
            [],
            [],
        )

    @classmethod
    def from_records(cls, records: Sequence[LogRecord]) -> "RecordBatch":
        """Columnarize a list of record objects (interning locations)."""
        n = len(records)
        ts = np.empty(n, dtype=np.float64)
        lids = np.empty(n, dtype=np.int32)
        sevs = np.empty(n, dtype=np.int8)
        msgs: List[str] = [""] * n
        pool: List[str] = []
        index: Dict[str, int] = {}
        ets: Optional[list] = None
        fids: Optional[list] = None
        for i, rec in enumerate(records):
            ts[i] = rec.timestamp
            lid = index.get(rec.location)
            if lid is None:
                lid = len(pool)
                index[rec.location] = lid
                pool.append(rec.location)
            lids[i] = lid
            sevs[i] = int(rec.severity)
            msgs[i] = rec.message
            if rec.event_type is not None:
                if ets is None:
                    ets = [None] * n
                ets[i] = rec.event_type
            if rec.fault_id is not None:
                if fids is None:
                    fids = [None] * n
                fids[i] = rec.fault_id
        return cls(ts, lids, sevs, msgs, pool, event_types=ets,
                   fault_ids=fids, loc_index=index)

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def __bool__(self) -> bool:
        return len(self.timestamps) > 0

    def location(self, i: int) -> str:
        """The location string of row ``i``."""
        return self.loc_pool[self.loc_ids[i]]

    def record(self, i: int) -> LogRecord:
        """Materialize row ``i`` as a :class:`LogRecord`."""
        if i < 0:
            i += len(self.timestamps)
        return LogRecord(
            timestamp=float(self.timestamps[i]),
            location=self.loc_pool[self.loc_ids[i]],
            severity=Severity(int(self.severities[i])),
            message=self.messages[i],
            event_type=(
                None if self.event_types is None else self.event_types[i]
            ),
            fault_id=(
                None if self.fault_ids is None else self.fault_ids[i]
            ),
        )

    def __getitem__(
        self, key: Union[int, slice]
    ) -> Union[LogRecord, "RecordBatch"]:
        if isinstance(key, slice):
            start, stop, step = key.indices(len(self))
            if step != 1:
                raise ValueError("RecordBatch slices must be contiguous")
            return self.slice(start, stop)
        return self.record(int(key))

    def __iter__(self):
        for i in range(len(self)):
            yield self.record(i)

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """A zero-copy contiguous view (shares the location pool)."""
        sl = slice(start, stop)
        return RecordBatch(
            self.timestamps[sl],
            self.loc_ids[sl],
            self.severities[sl],
            self.messages[sl],
            self.loc_pool,
            template_ids=(
                None if self.template_ids is None else self.template_ids[sl]
            ),
            event_types=(
                None if self.event_types is None else self.event_types[sl]
            ),
            fault_ids=(
                None if self.fault_ids is None else self.fault_ids[sl]
            ),
            loc_index=self._loc_index,
            token_lists=(
                None if self.token_lists is None else self.token_lists[sl]
            ),
        )

    def take(self, sel: np.ndarray) -> "RecordBatch":
        """Rows selected by a boolean mask or integer index array (copy)."""
        sel = np.asarray(sel)
        if sel.dtype == np.bool_:
            idx = np.flatnonzero(sel)
        else:
            idx = sel
        msgs = [self.messages[i] for i in idx]
        return RecordBatch(
            self.timestamps[idx],
            self.loc_ids[idx],
            self.severities[idx],
            msgs,
            self.loc_pool,
            template_ids=(
                None if self.template_ids is None else self.template_ids[idx]
            ),
            event_types=(
                None if self.event_types is None
                else [self.event_types[i] for i in idx]
            ),
            fault_ids=(
                None if self.fault_ids is None
                else [self.fault_ids[i] for i in idx]
            ),
            loc_index=self._loc_index,
            token_lists=(
                None if self.token_lists is None
                else [self.token_lists[i] for i in idx]
            ),
        )

    @staticmethod
    def concat(batches: Sequence["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches, remapping location ids to a union pool."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return RecordBatch.empty()
        if len(batches) == 1:
            return batches[0]
        pool: List[str] = []
        index: Dict[str, int] = {}
        lid_parts = []
        for b in batches:
            remap = np.empty(len(b.loc_pool), dtype=np.int32)
            for j, loc in enumerate(b.loc_pool):
                lid = index.get(loc)
                if lid is None:
                    lid = len(pool)
                    index[loc] = lid
                    pool.append(loc)
                remap[j] = lid
            lid_parts.append(remap[b.loc_ids])
        n = sum(len(b) for b in batches)
        msgs: List[str] = []
        for b in batches:
            msgs.extend(b.messages)
        ets = None
        if any(b.event_types is not None for b in batches):
            ets = []
            for b in batches:
                ets.extend(b.event_types if b.event_types is not None
                           else [None] * len(b))
        fids = None
        if any(b.fault_ids is not None for b in batches):
            fids = []
            for b in batches:
                fids.extend(b.fault_ids if b.fault_ids is not None
                            else [None] * len(b))
        tids = None
        if all(b.template_ids is not None for b in batches):
            tids = np.concatenate([b.template_ids for b in batches])
        assert n == len(msgs)
        return RecordBatch(
            np.concatenate([b.timestamps for b in batches]),
            np.concatenate(lid_parts),
            np.concatenate([b.severities for b in batches]),
            msgs,
            pool,
            template_ids=tids,
            event_types=ets,
            fault_ids=fids,
            loc_index=index,
        )

    # -- conversion ----------------------------------------------------------

    def to_records(self) -> List[LogRecord]:
        """Materialize the whole batch as record objects (scalar path)."""
        pool = self.loc_pool
        ets = self.event_types
        fids = self.fault_ids
        sev_of = {int(s): s for s in Severity}
        return [
            LogRecord(
                timestamp=float(self.timestamps[i]),
                location=pool[self.loc_ids[i]],
                severity=sev_of[int(self.severities[i])],
                message=self.messages[i],
                event_type=None if ets is None else ets[i],
                fault_id=None if fids is None else fids[i],
            )
            for i in range(len(self.timestamps))
        ]

    def intern(self, location: str) -> int:
        """Intern a location string into the pool, returning its id."""
        if self._loc_index is None:
            self._loc_index = {
                loc: j for j, loc in enumerate(self.loc_pool)
            }
        lid = self._loc_index.get(location)
        if lid is None:
            lid = len(self.loc_pool)
            self._loc_index[location] = lid
            self.loc_pool.append(location)
        return lid

    def nbytes(self) -> int:
        """Approximate array memory footprint (excludes strings)."""
        n = self.timestamps.nbytes + self.loc_ids.nbytes
        n += self.severities.nbytes
        if self.template_ids is not None:
            n += self.template_ids.nbytes
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RecordBatch(n={len(self)}, locs={len(self.loc_pool)}, "
            f"classified={self.template_ids is not None})"
        )
