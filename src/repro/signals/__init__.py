"""Signal layer: event-count signals and their characterization.

Section III of the paper treats each event type as a *signal*: the number
of occurrences sampled every 10 seconds.  Wavelets and filtering shape the
normal behaviour of each signal; signals are classified as periodic, noise
or silent (Fig. 1); outliers — the deviations from normality that seed all
correlation and prediction — are detected online with a causal
moving-median filter (Fig. 3).

Modules:

* :mod:`repro.signals.extraction` — records → per-event-type signals;
* :mod:`repro.signals.wavelet` — from-scratch Haar DWT and denoising;
* :mod:`repro.signals.characterize` — signal-class inference and
  normal-behaviour statistics;
* :mod:`repro.signals.filtering` — causal moving median/average filters;
* :mod:`repro.signals.outliers` — offline and online outlier detection
  with replacement;
* :mod:`repro.signals.bank` — all anchors' online detectors in shared
  numpy state, ticked with one vectorized pass (the streaming fast
  path);
* :mod:`repro.signals.crosscorr` — lagged cross-correlation of outlier
  trains (the seed of GRITE's first level).
"""

from repro.signals.extraction import SignalSet, extract_signals
from repro.signals.wavelet import haar_dwt, haar_idwt, wavelet_denoise
from repro.signals.characterize import (
    NormalBehavior,
    characterize_signal,
    derive_threshold,
    estimate_period,
)
from repro.signals.filtering import causal_moving_average, causal_moving_median
from repro.signals.outliers import (
    OnlineOutlierDetector,
    OnlinePeriodicDetector,
    OutlierResult,
    detect_outliers_offline,
    periodic_gap_outliers,
)
from repro.signals.bank import BankLayoutError, VectorizedDetectorBank
from repro.signals.crosscorr import (
    CachedCorrelator,
    PairCorrelation,
    best_lag_correlation,
    correlate_outlier_trains,
    cross_correlation,
    effective_tolerance,
)

__all__ = [
    "BankLayoutError",
    "VectorizedDetectorBank",
    "CachedCorrelator",
    "SignalSet",
    "extract_signals",
    "haar_dwt",
    "haar_idwt",
    "wavelet_denoise",
    "NormalBehavior",
    "characterize_signal",
    "derive_threshold",
    "estimate_period",
    "causal_moving_average",
    "causal_moving_median",
    "OnlineOutlierDetector",
    "OnlinePeriodicDetector",
    "OutlierResult",
    "detect_outliers_offline",
    "periodic_gap_outliers",
    "PairCorrelation",
    "best_lag_correlation",
    "correlate_outlier_trains",
    "cross_correlation",
    "effective_tolerance",
]
