"""From-scratch Haar wavelet transform and denoising.

The paper's preprocessing "use[s] wavelets and filtering to characterize
the normal behavior" of each signal (section III.A, citing the authors'
IPDPS'12 work).  No wavelet library is assumed here: the Haar discrete
wavelet transform, its inverse, and universal-threshold denoising are
implemented directly on numpy arrays.

Conventions: the DWT of a length-``n`` signal (``n`` padded up to a power
of two by edge replication) is returned as a list of detail-coefficient
arrays per level plus the final approximation array.  Perfect
reconstruction holds exactly (up to float error) — a property the test
suite checks with hypothesis.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

_SQRT2 = np.sqrt(2.0)


def _pad_pow2(x: np.ndarray) -> Tuple[np.ndarray, int]:
    """Pad with edge replication to the next power of two."""
    n = x.size
    if n == 0:
        raise ValueError("empty signal")
    target = 1 << (n - 1).bit_length()
    if target == n:
        return x.astype(np.float64), n
    return np.pad(x.astype(np.float64), (0, target - n), mode="edge"), n


def haar_dwt(x: np.ndarray, levels: int | None = None) -> Tuple[List[np.ndarray], np.ndarray, int]:
    """Multilevel Haar DWT.

    Returns ``(details, approx, original_length)`` where ``details[k]`` is
    the detail band of level ``k+1`` (finest first) and ``approx`` is the
    remaining approximation.  ``levels`` defaults to the maximum possible.
    """
    padded, orig_len = _pad_pow2(np.asarray(x, dtype=np.float64))
    max_levels = int(np.log2(padded.size)) if padded.size > 1 else 0
    if levels is None:
        levels = max_levels
    if not 0 <= levels <= max_levels:
        raise ValueError(f"levels must be in [0, {max_levels}]")
    details: List[np.ndarray] = []
    approx = padded
    for _ in range(levels):
        even = approx[0::2]
        odd = approx[1::2]
        details.append((even - odd) / _SQRT2)
        approx = (even + odd) / _SQRT2
    return details, approx, orig_len


def haar_idwt(
    details: List[np.ndarray], approx: np.ndarray, orig_len: int
) -> np.ndarray:
    """Inverse of :func:`haar_dwt` (exact reconstruction)."""
    x = np.asarray(approx, dtype=np.float64)
    for d in reversed(details):
        if d.size != x.size:
            raise ValueError("inconsistent band sizes")
        out = np.empty(x.size * 2, dtype=np.float64)
        out[0::2] = (x + d) / _SQRT2
        out[1::2] = (x - d) / _SQRT2
        x = out
    if orig_len > x.size:
        raise ValueError("orig_len exceeds reconstructed size")
    return x[:orig_len]


def wavelet_denoise(
    x: np.ndarray,
    levels: int | None = None,
    threshold: float | None = None,
) -> np.ndarray:
    """Soft-threshold Haar denoising.

    ``threshold`` defaults to the universal threshold
    ``sigma * sqrt(2 ln n)`` with sigma estimated from the finest detail
    band via the median absolute deviation (Donoho–Johnstone).  The
    denoised signal is the smooth "normal behaviour" estimate; the
    residual ``x - denoised`` is where offline outlier detection looks.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size < 2:
        return x.copy()
    details, approx, orig_len = haar_dwt(x, levels)
    if not details:
        return x.copy()
    if threshold is None:
        finest = details[0]
        sigma = np.median(np.abs(finest)) / 0.6745 if finest.size else 0.0
        threshold = sigma * np.sqrt(2.0 * np.log(max(x.size, 2)))
    shrunk = [
        np.sign(d) * np.maximum(np.abs(d) - threshold, 0.0) for d in details
    ]
    return haar_idwt(shrunk, approx, orig_len)


def wavelet_energy_by_level(x: np.ndarray) -> np.ndarray:
    """Relative detail-band energies, finest band first.

    Periodic signals concentrate energy at the band matching their period;
    white-noise-like signals spread energy evenly; silent signals have
    (near) zero total energy.  Used by signal characterization as a
    scale-localized complement to the Fourier view.
    """
    details, _approx, _n = haar_dwt(x)
    energies = np.array([float(np.sum(d * d)) for d in details])
    total = energies.sum()
    if total <= 0:
        return np.zeros_like(energies)
    return energies / total
