"""Lagged cross-correlation of signals and outlier trains.

The signal cross-correlation function provides the 2-pair correlations
that seed GRITE's first tree level (section III.C).  Two views are
provided:

* :func:`cross_correlation` — classic normalized cross-correlation of two
  dense signals over non-negative lags;
* :func:`correlate_outlier_trains` — the sparse, outlier-train view used
  in practice: given the outlier sample indices of two signals, find the
  delay at which outliers of B most often follow outliers of A, and how
  reliably.  This is what "we are correlating signals based on the
  occurrences of outliers in them" means operationally, and it is orders
  of magnitude cheaper than dense correlation when outliers are rare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


#: minimum lag*size product before the FFT path pays for its setup
_FFT_MIN_WORK = 32_768


def cross_correlation(
    x: np.ndarray, y: np.ndarray, max_lag: int, method: str = "auto"
) -> np.ndarray:
    """Normalized cross-correlation ``corr[lag] = corr(x[t], y[t+lag])``.

    Lags run from 0 to ``max_lag`` inclusive; both inputs are centered and
    scaled, so outputs are Pearson correlations in ``[-1, 1]`` (zero when
    either window is constant).

    ``method`` selects the implementation: ``"loop"`` is the per-lag
    reference, ``"fft"`` computes every lag's cross term with one FFT
    product plus prefix sums for the per-lag means and variances (O(n
    log n) instead of O(lags·n)), ``"auto"`` picks FFT once the work is
    large enough to amortize the transforms.  The two agree to float
    tolerance (different summation order), not bit for bit — tiny
    inputs stay on the loop for that reason.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("signals must share length")
    if max_lag < 0 or max_lag >= x.size:
        raise ValueError("max_lag out of range")
    if method not in ("auto", "fft", "loop"):
        raise ValueError(f"unknown method {method!r}")
    if method == "fft" or (
        method == "auto" and (max_lag + 1) * x.size >= _FFT_MIN_WORK
    ):
        return _cross_correlation_fft(x, y, max_lag)
    out = np.zeros(max_lag + 1)
    for lag in range(max_lag + 1):
        a = x[: x.size - lag]
        b = y[lag:]
        sa, sb = a.std(), b.std()
        if sa <= 0 or sb <= 0:
            continue
        out[lag] = float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))
    return out


def _cross_correlation_fft(
    x: np.ndarray, y: np.ndarray, max_lag: int
) -> np.ndarray:
    """All-lags Pearson correlation via one FFT product.

    For lag ℓ the overlap is ``a = x[:n-ℓ]``, ``b = y[ℓ:]``.  The cross
    term ``Σ a·b`` for *every* ℓ is one circular correlation (computed
    with real FFTs and zero padding); per-lag sums and sums of squares
    of the two windows come from prefix sums, giving means and
    variances in O(1) per lag.  Windows whose variance underflows are
    reported as 0 like the reference loop.
    """
    n = x.size
    lags = np.arange(max_lag + 1)
    length = n - lags  # overlap size per lag, >= 1 by the range check

    m = 1 << int(np.ceil(np.log2(2 * n)))
    fx = np.fft.rfft(x, m)
    fy = np.fft.rfft(y, m)
    # irfft(conj(F(x))·F(y))[ℓ] = Σ_t x[t]·y[t+ℓ]
    cross = np.fft.irfft(np.conj(fx) * fy, m)[: max_lag + 1]

    cx = np.cumsum(x)
    cx2 = np.cumsum(x * x)
    sum_a = cx[length - 1]
    sum_a2 = cx2[length - 1]
    cy = np.cumsum(y)
    cy2 = np.cumsum(y * y)
    sum_b = cy[-1] - np.concatenate(([0.0], cy[: max_lag]))
    sum_b2 = cy2[-1] - np.concatenate(([0.0], cy2[: max_lag]))

    mean_a = sum_a / length
    mean_b = sum_b / length
    var_a = sum_a2 / length - mean_a * mean_a
    var_b = sum_b2 / length - mean_b * mean_b
    # prefix-sum variance underflows around true-constant windows;
    # clamp the tiny negatives and treat near-zero variance as constant
    eps_a = 1e-12 * np.maximum(1.0, sum_a2 / length)
    eps_b = 1e-12 * np.maximum(1.0, sum_b2 / length)
    ok = (var_a > eps_a) & (var_b > eps_b)
    cov = cross / length - mean_a * mean_b
    out = np.zeros(max_lag + 1)
    denom = np.sqrt(np.where(ok, var_a * var_b, 1.0))
    out[ok] = (cov / denom)[ok]
    return out


class CachedCorrelator:
    """Repeated lag correlation against one cached reference signal.

    A drift check correlates the *same* anchor history against a fresh
    observation window every time it fires; recomputing the reference's
    FFT and per-lag moments on every check is where the old
    O(lags·n) loop cost came from.  This caches everything derivable
    from the reference — its padded FFT (conjugated), prefix sums, and
    per-lag means/variances — so each :meth:`correlate` call pays one
    FFT of the query signal plus O(lags) arithmetic.

    Results match ``cross_correlation(reference, y, max_lag,
    method="fft")`` exactly (same arithmetic, just hoisted).
    """

    def __init__(self, reference: np.ndarray, max_lag: int) -> None:
        x = np.asarray(reference, dtype=np.float64)
        if max_lag < 0 or max_lag >= x.size:
            raise ValueError("max_lag out of range")
        self.n = x.size
        self.max_lag = int(max_lag)
        lags = np.arange(self.max_lag + 1)
        self._length = self.n - lags
        self._m = 1 << int(np.ceil(np.log2(2 * self.n)))
        self._fx_conj = np.conj(np.fft.rfft(x, self._m))
        cx = np.cumsum(x)
        cx2 = np.cumsum(x * x)
        sum_a = cx[self._length - 1]
        sum_a2 = cx2[self._length - 1]
        self._mean_a = sum_a / self._length
        var_a = sum_a2 / self._length - self._mean_a * self._mean_a
        eps_a = 1e-12 * np.maximum(1.0, sum_a2 / self._length)
        self._ok_a = var_a > eps_a
        self._var_a = var_a

    def correlate(self, y: np.ndarray) -> np.ndarray:
        """Pearson correlation per lag of ``y`` against the reference."""
        y = np.asarray(y, dtype=np.float64)
        if y.size != self.n:
            raise ValueError("signals must share length")
        length = self._length
        max_lag = self.max_lag
        fy = np.fft.rfft(y, self._m)
        cross = np.fft.irfft(self._fx_conj * fy, self._m)[: max_lag + 1]
        cy = np.cumsum(y)
        cy2 = np.cumsum(y * y)
        sum_b = cy[-1] - np.concatenate(([0.0], cy[:max_lag]))
        sum_b2 = cy2[-1] - np.concatenate(([0.0], cy2[:max_lag]))
        mean_b = sum_b / length
        var_b = sum_b2 / length - mean_b * mean_b
        eps_b = 1e-12 * np.maximum(1.0, sum_b2 / length)
        ok = self._ok_a & (var_b > eps_b)
        cov = cross / length - self._mean_a * mean_b
        out = np.zeros(max_lag + 1)
        denom = np.sqrt(np.where(ok, self._var_a * var_b, 1.0))
        out[ok] = (cov / denom)[ok]
        return out

    def best(self, y: np.ndarray) -> Tuple[int, float]:
        """Lag maximizing :meth:`correlate` and its correlation."""
        corr = self.correlate(y)
        lag = int(np.argmax(corr))
        return lag, float(corr[lag])


def best_lag_correlation(
    x: np.ndarray, y: np.ndarray, max_lag: int
) -> Tuple[int, float]:
    """Lag in ``[0, max_lag]`` maximizing the cross-correlation."""
    corr = cross_correlation(x, y, max_lag)
    lag = int(np.argmax(corr))
    return lag, float(corr[lag])


@dataclass(frozen=True)
class PairCorrelation:
    """A 2-pair correlation: outliers of B follow outliers of A.

    ``delay`` is in samples; ``strength`` is the fraction of A-outliers
    followed by a B-outlier at ``delay`` (± tolerance) — the empirical
    P(B | A, θ).  ``n_matches`` of ``n_a`` A-outliers matched; ``n_b`` is
    B's total outlier count (used for the significance test downstream).
    """

    delay: int
    strength: float
    n_matches: int
    n_a: int
    n_b: int


def effective_tolerance(
    delay: int, tolerance: int = 1, rel_tolerance: float = 0.35
) -> int:
    """Matching half-window for a given delay.

    Inter-event delays jitter roughly proportionally to their size (a
    node-card chain's hour-scale steps wander by minutes), so the match
    window grows with the delay.  This is also why "for delays larger
    than 5 minutes, the larger the delay the lower the similarity degree
    and so the lower the confidence" (section IV.B): wider windows dilute
    the per-sample evidence.
    """
    return max(int(tolerance), int(rel_tolerance * delay))


def correlate_outlier_trains(
    times_a: np.ndarray,
    times_b: np.ndarray,
    max_lag: int,
    tolerance: int = 1,
    rel_tolerance: float = 0.35,
    min_matches: int = 2,
) -> Optional[PairCorrelation]:
    """Best fixed-delay correlation between two outlier trains.

    Every (A-outlier, B-outlier) pair within ``max_lag`` contributes its
    delay to a histogram.  Candidate delays are scored by the histogram
    mass inside their :func:`effective_tolerance` window (so long, jittery
    delays still accumulate evidence); the best-scoring delay wins, ties
    to the smallest.  Strength counts the fraction of A-outliers with at
    least one B match inside the winning window.  Returns ``None`` when
    fewer than ``min_matches`` A-outliers match.
    """
    a = np.asarray(times_a, dtype=np.int64)
    b = np.asarray(times_b, dtype=np.int64)
    if a.size == 0 or b.size == 0:
        return None
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    b = np.sort(b)
    lo = np.searchsorted(b, a, side="left")
    hi = np.searchsorted(b, a + max_lag, side="right")
    per_a = hi - lo
    total = int(per_a.sum())
    if total == 0:
        return None
    # Flatten all (b - a) delay pairs without a Python loop: for each a_i
    # the matching b indices are lo_i .. hi_i - 1.
    starts = np.repeat(np.cumsum(per_a) - per_a, per_a)
    flat_idx = np.arange(total) - starts + np.repeat(lo, per_a)
    diffs = b[flat_idx] - np.repeat(a, per_a)
    counts = np.bincount(diffs, minlength=max_lag + 1)[: max_lag + 1]

    # Windowed score per candidate delay, window growing with the delay.
    cum = np.concatenate([[0], np.cumsum(counts)])
    delays = np.arange(max_lag + 1)
    widths = np.maximum(int(tolerance), (rel_tolerance * delays).astype(np.int64))
    w_lo = np.maximum(0, delays - widths)
    w_hi = np.minimum(max_lag, delays + widths)
    scores = cum[w_hi + 1] - cum[w_lo]
    # Normalize by window size so wide windows do not win on bulk alone.
    scores = scores / (w_hi - w_lo + 1)
    best = int(np.argmax(scores))
    # Left-clipped windows near lag 0 have small denominators, biasing the
    # argmax toward 0; refine to the mass-weighted mean delay inside the
    # winning window so a true 1-3 sample lag is not snapped to zero.
    lo_b, hi_b = int(w_lo[best]), int(w_hi[best])
    mass = counts[lo_b : hi_b + 1]
    if mass.sum() > 0:
        delay = int(round(np.average(np.arange(lo_b, hi_b + 1), weights=mass)))
    else:  # pragma: no cover - mass>0 guaranteed by total>0 at argmax
        delay = best

    width = effective_tolerance(delay, tolerance, rel_tolerance)
    d_lo, d_hi = max(0, delay - width), delay + width
    matched = np.count_nonzero(
        np.searchsorted(b, a + d_hi, side="right")
        > np.searchsorted(b, a + d_lo, side="left")
    )
    if matched < min_matches:
        return None
    return PairCorrelation(
        delay=delay,
        strength=matched / a.size,
        n_matches=int(matched),
        n_a=int(a.size),
        n_b=int(b.size),
    )
