"""Lagged cross-correlation of signals and outlier trains.

The signal cross-correlation function provides the 2-pair correlations
that seed GRITE's first tree level (section III.C).  Two views are
provided:

* :func:`cross_correlation` — classic normalized cross-correlation of two
  dense signals over non-negative lags;
* :func:`correlate_outlier_trains` — the sparse, outlier-train view used
  in practice: given the outlier sample indices of two signals, find the
  delay at which outliers of B most often follow outliers of A, and how
  reliably.  This is what "we are correlating signals based on the
  occurrences of outliers in them" means operationally, and it is orders
  of magnitude cheaper than dense correlation when outliers are rare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


def cross_correlation(
    x: np.ndarray, y: np.ndarray, max_lag: int
) -> np.ndarray:
    """Normalized cross-correlation ``corr[lag] = corr(x[t], y[t+lag])``.

    Lags run from 0 to ``max_lag`` inclusive; both inputs are centered and
    scaled, so outputs are Pearson correlations in ``[-1, 1]`` (zero when
    either window is constant).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("signals must share length")
    if max_lag < 0 or max_lag >= x.size:
        raise ValueError("max_lag out of range")
    out = np.zeros(max_lag + 1)
    for lag in range(max_lag + 1):
        a = x[: x.size - lag]
        b = y[lag:]
        sa, sb = a.std(), b.std()
        if sa <= 0 or sb <= 0:
            continue
        out[lag] = float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))
    return out


def best_lag_correlation(
    x: np.ndarray, y: np.ndarray, max_lag: int
) -> Tuple[int, float]:
    """Lag in ``[0, max_lag]`` maximizing the cross-correlation."""
    corr = cross_correlation(x, y, max_lag)
    lag = int(np.argmax(corr))
    return lag, float(corr[lag])


@dataclass(frozen=True)
class PairCorrelation:
    """A 2-pair correlation: outliers of B follow outliers of A.

    ``delay`` is in samples; ``strength`` is the fraction of A-outliers
    followed by a B-outlier at ``delay`` (± tolerance) — the empirical
    P(B | A, θ).  ``n_matches`` of ``n_a`` A-outliers matched; ``n_b`` is
    B's total outlier count (used for the significance test downstream).
    """

    delay: int
    strength: float
    n_matches: int
    n_a: int
    n_b: int


def effective_tolerance(
    delay: int, tolerance: int = 1, rel_tolerance: float = 0.35
) -> int:
    """Matching half-window for a given delay.

    Inter-event delays jitter roughly proportionally to their size (a
    node-card chain's hour-scale steps wander by minutes), so the match
    window grows with the delay.  This is also why "for delays larger
    than 5 minutes, the larger the delay the lower the similarity degree
    and so the lower the confidence" (section IV.B): wider windows dilute
    the per-sample evidence.
    """
    return max(int(tolerance), int(rel_tolerance * delay))


def correlate_outlier_trains(
    times_a: np.ndarray,
    times_b: np.ndarray,
    max_lag: int,
    tolerance: int = 1,
    rel_tolerance: float = 0.35,
    min_matches: int = 2,
) -> Optional[PairCorrelation]:
    """Best fixed-delay correlation between two outlier trains.

    Every (A-outlier, B-outlier) pair within ``max_lag`` contributes its
    delay to a histogram.  Candidate delays are scored by the histogram
    mass inside their :func:`effective_tolerance` window (so long, jittery
    delays still accumulate evidence); the best-scoring delay wins, ties
    to the smallest.  Strength counts the fraction of A-outliers with at
    least one B match inside the winning window.  Returns ``None`` when
    fewer than ``min_matches`` A-outliers match.
    """
    a = np.asarray(times_a, dtype=np.int64)
    b = np.asarray(times_b, dtype=np.int64)
    if a.size == 0 or b.size == 0:
        return None
    if max_lag < 0:
        raise ValueError("max_lag must be >= 0")
    b = np.sort(b)
    lo = np.searchsorted(b, a, side="left")
    hi = np.searchsorted(b, a + max_lag, side="right")
    per_a = hi - lo
    total = int(per_a.sum())
    if total == 0:
        return None
    # Flatten all (b - a) delay pairs without a Python loop: for each a_i
    # the matching b indices are lo_i .. hi_i - 1.
    starts = np.repeat(np.cumsum(per_a) - per_a, per_a)
    flat_idx = np.arange(total) - starts + np.repeat(lo, per_a)
    diffs = b[flat_idx] - np.repeat(a, per_a)
    counts = np.bincount(diffs, minlength=max_lag + 1)[: max_lag + 1]

    # Windowed score per candidate delay, window growing with the delay.
    cum = np.concatenate([[0], np.cumsum(counts)])
    delays = np.arange(max_lag + 1)
    widths = np.maximum(int(tolerance), (rel_tolerance * delays).astype(np.int64))
    w_lo = np.maximum(0, delays - widths)
    w_hi = np.minimum(max_lag, delays + widths)
    scores = cum[w_hi + 1] - cum[w_lo]
    # Normalize by window size so wide windows do not win on bulk alone.
    scores = scores / (w_hi - w_lo + 1)
    best = int(np.argmax(scores))
    # Left-clipped windows near lag 0 have small denominators, biasing the
    # argmax toward 0; refine to the mass-weighted mean delay inside the
    # winning window so a true 1-3 sample lag is not snapped to zero.
    lo_b, hi_b = int(w_lo[best]), int(w_hi[best])
    mass = counts[lo_b : hi_b + 1]
    if mass.sum() > 0:
        delay = int(round(np.average(np.arange(lo_b, hi_b + 1), weights=mass)))
    else:  # pragma: no cover - mass>0 guaranteed by total>0 at argmax
        delay = best

    width = effective_tolerance(delay, tolerance, rel_tolerance)
    d_lo, d_hi = max(0, delay - width), delay + width
    matched = np.count_nonzero(
        np.searchsorted(b, a + d_hi, side="right")
        > np.searchsorted(b, a + d_lo, side="left")
    )
    if matched < min_matches:
        return None
    return PairCorrelation(
        delay=delay,
        strength=matched / a.size,
        n_matches=int(matched),
        n_a=int(a.size),
        n_b=int(b.size),
    )
