"""Causal moving filters.

The online outlier detector is "a filtering signal analysis module so that
it can be easily inserted between signal analysis modules" built on "a
causal moving data window … appropriate to realtime applications"
(section III.B.1).  This module provides the causal moving median and
average both as vectorized offline transforms (for preprocessing whole
training signals) and as O(log N)-per-point streaming primitives used by
:class:`repro.signals.outliers.OnlineOutlierDetector`.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, List, Optional

import numpy as np


def causal_moving_median(x: np.ndarray, window: int) -> np.ndarray:
    """Median of the trailing ``window`` samples (inclusive) at each point.

    The first samples use the partial prefix (growing window), so the
    output is defined everywhere and the filter is strictly causal.
    """
    x = np.asarray(x, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    med = RollingMedian(window)
    out = np.empty_like(x)
    for i, v in enumerate(x):
        med.push(float(v))
        out[i] = med.median()
    return out


def causal_moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Mean of the trailing ``window`` samples (inclusive) at each point.

    Fully vectorized with a cumulative sum; the growing-prefix convention
    matches :func:`causal_moving_median`.
    """
    x = np.asarray(x, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    csum = np.cumsum(x)
    out = np.empty_like(x)
    head = min(window, x.size)
    out[:head] = csum[:head] / (np.arange(head) + 1)
    if x.size > window:
        out[window:] = (csum[window:] - csum[:-window]) / window
    return out


class RollingMedian:
    """Sliding-window median with O(log N) push.

    Keeps the window contents in a sorted list (bisect insort) plus an
    eviction queue.  For the paper's two-month windows (~half a million
    samples) the per-push cost is a few microseconds — dominated by the
    ``list.insert`` memmove, which numpy cannot improve on without a
    dedicated indexable skip list.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._sorted: List[float] = []
        self._queue: Deque[float] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, value: float) -> Optional[float]:
        """Insert ``value``; evicts and returns the oldest when full."""
        evicted: Optional[float] = None
        if len(self._queue) == self.capacity:
            evicted = self._queue.popleft()
            idx = bisect.bisect_left(self._sorted, evicted)
            del self._sorted[idx]
        self._queue.append(value)
        bisect.insort(self._sorted, value)
        return evicted

    def replace_newest(self, value: float) -> None:
        """Swap the most recent sample (outlier replacement support)."""
        if not self._queue:
            raise IndexError("empty window")
        old = self._queue.pop()
        idx = bisect.bisect_left(self._sorted, old)
        del self._sorted[idx]
        self._queue.append(value)
        bisect.insort(self._sorted, value)

    def median(self) -> float:
        """Current window median (average of middles for even sizes)."""
        s = self._sorted
        n = len(s)
        if n == 0:
            raise IndexError("median of empty window")
        mid = n // 2
        if n % 2:
            return s[mid]
        return 0.5 * (s[mid - 1] + s[mid])

    def quantile(self, q: float) -> float:
        """Order-statistic quantile of the current window (nearest rank)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        s = self._sorted
        if not s:
            raise IndexError("quantile of empty window")
        idx = min(len(s) - 1, int(round(q * (len(s) - 1))))
        return s[idx]
