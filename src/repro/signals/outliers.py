"""Outlier detection: offline (training) and online (streaming).

Online detection follows section III.B.1 exactly: for a window of N
points the analyzed list for the current sample ``y_k`` is::

    V_k = {yc_{k-N}, ..., yc_{k-1},  y_{k-N}, ..., y_k}

i.e. the *corrected* history and the *raw* history together.  ``y_k`` is
compared with the median ``ym`` of ``V_k``; when the distance exceeds the
per-signal threshold, ``y_k`` is declared an outlier and the replacement
``yc_k = ym`` is recorded (the raw value is kept too).  Keeping both is
the paper's defence against "a large number of faults hitting the same
signal for a larger period of time": replacements anchor the median while
raw values keep legitimate drifts visible.

Offline detection is the vectorized batch analogue used during the
training phase, where execution time is unconstrained.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.signals.characterize import NormalBehavior
from repro.simulation.templates import SignalClass


@dataclass
class OutlierResult:
    """Outcome of scanning one signal.

    ``flags`` marks outlier samples; ``corrected`` is the signal with
    outliers replaced; ``indices`` lists the outlier sample positions.
    """

    flags: np.ndarray
    corrected: np.ndarray

    @property
    def indices(self) -> np.ndarray:
        """Sorted sample indices of the outliers."""
        return np.flatnonzero(self.flags)

    @property
    def n_outliers(self) -> int:
        """Total outliers found."""
        return int(self.flags.sum())


class _DualWindow:
    """Bounded raw+corrected history with a shared sorted view.

    Holds up to ``capacity + 1`` raw points (history plus the current
    sample) and up to ``capacity`` corrected points, exactly matching the
    paper's ``V_k``.  Median queries read the combined sorted list.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._raw: Deque[float] = deque()
        self._corr: Deque[float] = deque()
        self._sorted: List[float] = []

    def _insert(self, v: float) -> None:
        bisect.insort(self._sorted, v)

    def _remove(self, v: float) -> None:
        idx = bisect.bisect_left(self._sorted, v)
        del self._sorted[idx]

    def push_raw(self, v: float) -> None:
        """Add the current raw sample, evicting beyond capacity + 1."""
        self._raw.append(v)
        self._insert(v)
        if len(self._raw) > self.capacity + 1:
            self._remove(self._raw.popleft())

    def push_corrected(self, v: float) -> None:
        """Add the previous sample's corrected value."""
        self._corr.append(v)
        self._insert(v)
        if len(self._corr) > self.capacity:
            self._remove(self._corr.popleft())

    def median(self) -> float:
        """Median of the combined raw + corrected window."""
        s = self._sorted
        n = len(s)
        if n == 0:
            raise IndexError("median of empty window")
        mid = n // 2
        if n % 2:
            return s[mid]
        return 0.5 * (s[mid - 1] + s[mid])

    def state_dict(self) -> dict:
        """JSON-ready window contents (the sorted view is derivable)."""
        return {
            "capacity": self.capacity,
            "raw": list(self._raw),
            "corr": list(self._corr),
        }

    @classmethod
    def from_state(cls, state: dict) -> "_DualWindow":
        win = cls(int(state["capacity"]))
        win._raw = deque(float(v) for v in state["raw"])
        win._corr = deque(float(v) for v in state["corr"])
        win._sorted = sorted(list(win._raw) + list(win._corr))
        return win


class OnlineOutlierDetector:
    """Streaming causal outlier detector with replacement (Fig. 3).

    Parameters
    ----------
    threshold:
        Distance bound from the window median; use the value derived by
        :func:`repro.signals.characterize.derive_threshold` for the
        signal's class ("predefined thresholds for each signal, specified
        automatically in the preprocessing step").
    window:
        N, in samples.  The paper uses two months (518 400 samples at the
        10-second sampling period); scaled scenarios use less.
    warmup:
        Samples to observe before flagging anything, so the window median
        is meaningful from the first decision on.
    """

    def __init__(
        self, threshold: float, window: int, warmup: Optional[int] = None
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = float(threshold)
        self.window = int(window)
        self.warmup = int(warmup) if warmup is not None else min(window, 16)
        self._dual = _DualWindow(self.window)
        self._seen = 0

    def process(self, value: float) -> Tuple[bool, float]:
        """Consume one sample; returns ``(is_outlier, corrected_value)``."""
        self._dual.push_raw(float(value))
        median = self._dual.median()
        is_outlier = (
            self._seen >= self.warmup
            and abs(float(value) - median) > self.threshold
        )
        corrected = median if is_outlier else float(value)
        self._dual.push_corrected(corrected)
        self._seen += 1
        return is_outlier, corrected

    def process_array(self, x: np.ndarray) -> OutlierResult:
        """Scan a whole signal, sample by sample (still strictly causal)."""
        x = np.asarray(x, dtype=np.float64)
        flags = np.zeros(x.size, dtype=bool)
        corrected = np.empty_like(x)
        for i, v in enumerate(x):
            out, corr = self.process(float(v))
            flags[i] = out
            corrected[i] = corr
        return OutlierResult(flags=flags, corrected=corrected)

    def state_dict(self) -> dict:
        """Checkpointable state; restoring it resumes the exact stream."""
        return {
            "kind": "median",
            "threshold": self.threshold,
            "window": self.window,
            "warmup": self.warmup,
            "seen": self._seen,
            "dual": self._dual.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineOutlierDetector":
        det = cls(
            threshold=float(state["threshold"]),
            window=int(state["window"]),
            warmup=int(state["warmup"]),
        )
        det._seen = int(state["seen"])
        det._dual = _DualWindow.from_state(state["dual"])
        return det


def periodic_gap_outliers(
    x: np.ndarray,
    period: int,
    gap_factor: float = 1.8,
    burst_factor: float = 2.5,
) -> OutlierResult:
    """Outliers of a periodic (beat) signal: missing beats and bursts.

    A phase-aligned seasonal baseline is fragile — a period estimate off
    by a fraction of a sample drifts out of phase and floods the residual
    with false outliers.  Beat signals are better judged by their *gaps*:
    a silence longer than ``gap_factor`` periods is the paper's
    "lack of messages in the log" anomaly (node-crash syndrome), flagged
    once at the first missing beat of each silence; a beat carrying more
    than ``burst_factor`` times the typical amplitude is a burst anomaly.

    The corrected signal fills missing beats with the typical amplitude
    and clips bursts to it, mirroring the replacement strategy of the
    moving-median filter.
    """
    x = np.asarray(x, dtype=np.float64)
    if period < 1:
        raise ValueError("period must be >= 1")
    flags = np.zeros(x.size, dtype=bool)
    corrected = x.copy()
    beats = np.flatnonzero(x)
    if beats.size == 0:
        return OutlierResult(flags=flags, corrected=corrected)
    amplitude = float(np.median(x[beats]))

    # Bursts: beats far above the typical amplitude.
    burst = x > burst_factor * max(amplitude, 1.0)
    flags |= burst
    corrected[burst] = amplitude

    # Gaps: one outlier at the head of each silence.
    gap_limit = gap_factor * period
    prev = beats[:-1]
    nxt = beats[1:]
    gap_mask = (nxt - prev) > gap_limit
    for p in prev[gap_mask]:
        idx = int(p + period)
        if idx < flags.size:
            flags[idx] = True
            corrected[idx] = amplitude
    return OutlierResult(flags=flags, corrected=corrected)


class OnlinePeriodicDetector:
    """Streaming absence/burst detector for periodic signals.

    Tracks the last observed beat; when the silence since it exceeds
    ``gap_factor`` periods, one absence outlier is emitted (further
    silence stays quiet until beats resume — the component is already
    known to be down).  Bursts are flagged like the offline detector.  This
    is the online path that lets the hybrid method predict failures whose
    only symptom is a *lack* of notifications — the signal class plain
    data mining cannot see at all (section III).
    """

    def __init__(
        self,
        period: int,
        amplitude: float = 1.0,
        gap_factor: float = 1.8,
        burst_factor: float = 2.5,
    ) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = int(period)
        self.amplitude = float(max(amplitude, 1.0))
        self.gap_factor = gap_factor
        self.burst_factor = burst_factor
        self._last_beat: Optional[int] = None
        self._gap_reported = False
        self._k = -1

    def process(self, value: float) -> Tuple[bool, float]:
        """Consume one sample; returns ``(is_outlier, corrected)``."""
        self._k += 1
        k = self._k
        if value > 0:
            burst = value > self.burst_factor * self.amplitude
            self._last_beat = k
            self._gap_reported = False
            return burst, (self.amplitude if burst else float(value))
        if self._last_beat is None or self._gap_reported:
            return False, 0.0
        if k - self._last_beat > self.gap_factor * self.period:
            self._gap_reported = True
            return True, self.amplitude
        return False, 0.0

    def process_array(self, x: np.ndarray) -> OutlierResult:
        """Scan a whole signal through the streaming detector."""
        x = np.asarray(x, dtype=np.float64)
        flags = np.zeros(x.size, dtype=bool)
        corrected = np.empty_like(x)
        for i, v in enumerate(x):
            out, corr = self.process(float(v))
            flags[i] = out
            corrected[i] = corr
        return OutlierResult(flags=flags, corrected=corrected)

    def state_dict(self) -> dict:
        """Checkpointable state; restoring it resumes the exact stream."""
        return {
            "kind": "periodic",
            "period": self.period,
            "amplitude": self.amplitude,
            "gap_factor": self.gap_factor,
            "burst_factor": self.burst_factor,
            "last_beat": self._last_beat,
            "gap_reported": self._gap_reported,
            "k": self._k,
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlinePeriodicDetector":
        det = cls(
            period=int(state["period"]),
            amplitude=float(state["amplitude"]),
            gap_factor=float(state["gap_factor"]),
            burst_factor=float(state["burst_factor"]),
        )
        det._last_beat = (
            None if state["last_beat"] is None else int(state["last_beat"])
        )
        det._gap_reported = bool(state["gap_reported"])
        det._k = int(state["k"])
        return det


def restore_detector(state: dict):
    """Rebuild either online detector kind from its ``state_dict``."""
    if state["kind"] == "median":
        return OnlineOutlierDetector.from_state(state)
    if state["kind"] == "periodic":
        return OnlinePeriodicDetector.from_state(state)
    raise ValueError(f"unknown detector kind {state['kind']!r}")


def detect_outliers_offline(
    x: np.ndarray, behavior: NormalBehavior
) -> OutlierResult:
    """Vectorized batch outlier detection for the training phase.

    Silent and noise signals compare against their scalar median with the
    class threshold; periodic signals use gap/burst detection (see
    :func:`periodic_gap_outliers`).
    """
    x = np.asarray(x, dtype=np.float64)
    if behavior.signal_class == SignalClass.PERIODIC and behavior.period:
        result = periodic_gap_outliers(x, behavior.period)
    else:
        baseline = np.full_like(x, behavior.median)
        residual = x - baseline
        flags = np.abs(residual) > behavior.threshold
        corrected = np.where(flags, baseline, x)
        result = OutlierResult(flags=flags, corrected=corrected)
    obs.counter("outliers.signals_scanned").inc()
    obs.counter("outliers.flagged").inc(result.n_outliers)
    obs.counter("outliers.replaced").inc(
        int(np.count_nonzero(result.corrected != x))
    )
    return result
