"""Vectorized detector bank: all anchors' dual windows in shared arrays.

The streaming predictor closes every 10-second sample by stepping one
online detector per anchor.  Each step is cheap, but N Python calls per
tick (plus a circuit-breaker wrapper per call) dominate the tick cost
long before the arithmetic does.  The bank holds every anchor's state in
shared numpy arrays and closes a tick with *one* vectorized pass:

* **median group** (:class:`~repro.signals.outliers.OnlineOutlierDetector`
  equivalents): raw and corrected histories live in shared ring buffers
  of shape ``(n, window+1)`` / ``(n, window)``; a per-value histogram per
  anchor makes the combined-window median an O(bins) cumulative-sum
  select instead of a sort.
* **periodic group** (:class:`~repro.signals.outliers.OnlinePeriodicDetector`
  equivalents): the last-beat/gap-reported state machine as flat arrays.

Exactness, not approximation
----------------------------
The scalar semantics are reproduced bit for bit, which is what lets the
fast path be an implementation detail rather than a model change:

* The combined window ``V_k`` always holds an **odd** number of points
  (``min(t+1, W+1) + min(t, W)`` is odd for every ``t``), so the median
  is always a single element of the multiset — never an average — and a
  histogram selection returns the exact same value a sorted list would.
* Signal samples are event *counts*: non-negative integers.  Corrected
  values are either the raw sample or the window median, and a median of
  integers (odd window) is an integer, so by induction every window
  value sits on the integer histogram grid.
* Any anchor whose stream ever leaves the grid (a count beyond
  ``grid_limit``, or a non-integer value from an external caller) is
  **demoted**: its exact scalar detector is rebuilt from the ring
  contents and stepped per tick from then on.  Demotion preserves
  bit-identical output at the cost of that one anchor's speed.

State compatibility
-------------------
:meth:`state_dicts` emits per-anchor dictionaries in the *scalar*
``state_dict`` format ("median" / "periodic" kinds), and
:meth:`from_states` accepts the same — so checkpoints written by either
implementation resume on the other, and ``swap_model`` keeps working.
Construction raises :class:`BankLayoutError` when the detectors cannot
share a layout (mixed windows, desynchronized tick counts); callers
fall back to the scalar loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.signals.outliers import (
    OnlineOutlierDetector,
    OnlinePeriodicDetector,
    OutlierResult,
    _DualWindow,
    restore_detector,
)

Detector = Union[OnlineOutlierDetector, OnlinePeriodicDetector]


class BankLayoutError(ValueError):
    """The given detectors cannot share one vectorized layout."""


class VectorizedDetectorBank:
    """Tick-synchronized vector replacement for a set of online detectors.

    Parameters
    ----------
    detectors:
        The scalar detectors to absorb, in the caller's anchor order
        (the bank answers :meth:`tick` in the same order).  Their current
        state — including mid-stream window contents — is copied in, so
        a bank can be built at any point of a stream.  Detectors that
        cannot be vectorized exactly (off-grid window values) are kept
        as scalar fallbacks internally.
    grid_limit:
        Histogram bins per anchor; values in ``[0, grid_limit)`` on the
        integer grid are vectorized, anything else demotes its anchor to
        the scalar path.
    """

    def __init__(
        self, detectors: Sequence[Detector], grid_limit: int = 512
    ) -> None:
        if not detectors:
            raise BankLayoutError("empty detector bank")
        self.n = len(detectors)
        self.grid_limit = int(grid_limit)
        self._med_ix: List[int] = []
        self._per_ix: List[int] = []
        for i, det in enumerate(detectors):
            if isinstance(det, OnlineOutlierDetector):
                self._med_ix.append(i)
            elif isinstance(det, OnlinePeriodicDetector):
                self._per_ix.append(i)
            else:
                raise BankLayoutError(f"unsupported detector {type(det)!r}")
        self._build_median([detectors[i] for i in self._med_ix])
        self._build_periodic([detectors[i] for i in self._per_ix])
        self._med_ix_arr = np.asarray(self._med_ix, dtype=np.intp)
        self._per_ix_arr = np.asarray(self._per_ix, dtype=np.intp)

    # -- construction --------------------------------------------------------

    def _build_median(self, dets: List[OnlineOutlierDetector]) -> None:
        self._demoted: Dict[int, OnlineOutlierDetector] = {}
        self._nm = len(dets)
        if not dets:
            return
        windows = {d.window for d in dets}
        warmups = {d.warmup for d in dets}
        seens = {d._seen for d in dets}
        if len(windows) != 1 or len(warmups) != 1 or len(seens) != 1:
            raise BankLayoutError(
                "median detectors must share window/warmup/seen "
                f"(got windows={windows}, warmups={warmups}, seens={seens})"
            )
        self.window = dets[0].window
        self.warmup = dets[0].warmup
        self._seen = dets[0]._seen
        lens = {(len(d._dual._raw), len(d._dual._corr)) for d in dets}
        if len(lens) != 1:
            raise BankLayoutError("median windows are desynchronized")
        (self._raw_len, self._corr_len) = lens.pop()
        W = self.window
        B = self.grid_limit
        self._thr = np.array([d.threshold for d in dets], dtype=np.float64)
        self._raw_ring = np.zeros((self._nm, W + 1), dtype=np.float64)
        self._corr_ring = np.zeros((self._nm, W), dtype=np.float64)
        self._raw_start = 0
        self._corr_start = 0
        self._hist = np.zeros((self._nm, B), dtype=np.int64)
        for row, det in enumerate(dets):
            raw = np.fromiter(det._dual._raw, dtype=np.float64,
                              count=self._raw_len)
            corr = np.fromiter(det._dual._corr, dtype=np.float64,
                               count=self._corr_len)
            if not (self._on_grid(raw).all() and self._on_grid(corr).all()):
                self._demoted[row] = det
                continue
            self._raw_ring[row, : self._raw_len] = raw
            self._corr_ring[row, : self._corr_len] = corr
            np.add.at(self._hist[row], raw.astype(np.int64), 1)
            np.add.at(self._hist[row], corr.astype(np.int64), 1)
        self._med_act = np.array(
            [r for r in range(self._nm) if r not in self._demoted],
            dtype=np.intp,
        )

    def _build_periodic(self, dets: List[OnlinePeriodicDetector]) -> None:
        self._np = len(dets)
        if not dets:
            return
        ks = {d._k for d in dets}
        if len(ks) != 1:
            raise BankLayoutError(
                f"periodic detectors must share the tick count (got {ks})"
            )
        self._per_k = ks.pop()
        self._period = np.array([d.period for d in dets], dtype=np.int64)
        self._amplitude = np.array(
            [d.amplitude for d in dets], dtype=np.float64
        )
        self._gap_factor = np.array(
            [d.gap_factor for d in dets], dtype=np.float64
        )
        self._burst_factor = np.array(
            [d.burst_factor for d in dets], dtype=np.float64
        )
        self._last_beat = np.array(
            [-1 if d._last_beat is None else d._last_beat for d in dets],
            dtype=np.int64,
        )
        self._gap_reported = np.array(
            [d._gap_reported for d in dets], dtype=bool
        )

    def _on_grid(self, v: np.ndarray) -> np.ndarray:
        q = v.astype(np.int64, copy=False)
        return (v >= 0) & (v < self.grid_limit) & (q == v)

    # -- demotion ------------------------------------------------------------

    def _demote(self, row: int) -> OnlineOutlierDetector:
        """Rebuild row's exact scalar detector from the ring contents."""
        W = self.window
        raw_idx = (self._raw_start + np.arange(self._raw_len)) % (W + 1)
        corr_idx = (self._corr_start + np.arange(self._corr_len)) % W
        det = OnlineOutlierDetector(
            threshold=float(self._thr[row]), window=W, warmup=self.warmup
        )
        det._seen = self._seen
        det._dual = _DualWindow.from_state(
            {
                "capacity": W,
                "raw": self._raw_ring[row, raw_idx].tolist(),
                "corr": self._corr_ring[row, corr_idx].tolist(),
            }
        )
        self._demoted[row] = det
        self._med_act = self._med_act[self._med_act != row]
        return det

    # -- the tick ------------------------------------------------------------

    def tick(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Consume one sample per anchor; ``(is_outlier, corrected)``.

        ``values`` is one float per detector in construction order; the
        returned boolean/float arrays use the same order.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n,):
            raise ValueError(f"expected {self.n} values, got {values.shape}")
        flags = np.zeros(self.n, dtype=bool)
        corrected = np.zeros(self.n, dtype=np.float64)
        if self._nm:
            f, c = self._tick_median(values[self._med_ix_arr])
            flags[self._med_ix_arr] = f
            corrected[self._med_ix_arr] = c
        if self._np:
            f, c = self._tick_periodic(values[self._per_ix_arr])
            flags[self._per_ix_arr] = f
            corrected[self._per_ix_arr] = c
        return flags, corrected

    def _tick_median(
        self, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        flags = np.zeros(self._nm, dtype=bool)
        corrected = np.zeros(self._nm, dtype=np.float64)
        act = self._med_act
        if act.size:
            bad = ~self._on_grid(v[act])
            if bad.any():
                for row in act[bad]:
                    self._demote(int(row))
                act = self._med_act
        W = self.window
        if act.size:
            va = v[act]
            qa = va.astype(np.int64)
            hist = self._hist
            # push raw (evict the oldest when the ring is full)
            if self._raw_len > W:
                old = self._raw_ring[act, self._raw_start]
                hist[act, old.astype(np.int64)] -= 1
                slot = self._raw_start
            else:
                slot = (self._raw_start + self._raw_len) % (W + 1)
            self._raw_ring[act, slot] = va
            hist[act, qa] += 1
            n_raw = min(self._raw_len + 1, W + 1)
            # exact median: (k+1)-th smallest of the combined window,
            # which is always odd-sized (see module docstring)
            n = n_raw + self._corr_len
            k = n >> 1
            cum = hist[act].cumsum(axis=1)
            med = np.argmax(cum > k, axis=1).astype(np.float64)
            fl = (self._seen >= self.warmup) & (np.abs(va - med) > self._thr[act])
            co = np.where(fl, med, va)
            # push corrected (median of an on-grid window is on-grid)
            if self._corr_len >= W:
                old = self._corr_ring[act, self._corr_start]
                hist[act, old.astype(np.int64)] -= 1
                cslot = self._corr_start
            else:
                cslot = (self._corr_start + self._corr_len) % W
            self._corr_ring[act, cslot] = co
            hist[act, co.astype(np.int64)] += 1
            flags[act] = fl
            corrected[act] = co
        for row, det in self._demoted.items():
            out, co = det.process(float(v[row]))
            flags[row] = out
            corrected[row] = co
        # advance the shared ring cursors/counters once per tick
        if self._raw_len > W:
            self._raw_start = (self._raw_start + 1) % (W + 1)
        else:
            self._raw_len += 1
        if self._corr_len >= W:
            self._corr_start = (self._corr_start + 1) % W
        else:
            self._corr_len += 1
        self._seen += 1
        return flags, corrected

    def _tick_periodic(
        self, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._per_k += 1
        k = self._per_k
        beat = v > 0
        burst = beat & (v > self._burst_factor * self._amplitude)
        corrected = np.where(
            beat, np.where(burst, self._amplitude, v), 0.0
        )
        silent = ~beat
        gap_hit = (
            silent
            & (self._last_beat >= 0)
            & ~self._gap_reported
            & ((k - self._last_beat) > self._gap_factor * self._period)
        )
        corrected = np.where(gap_hit, self._amplitude, corrected)
        self._gap_reported = np.where(
            beat, False, self._gap_reported | gap_hit
        )
        self._last_beat = np.where(beat, k, self._last_beat)
        return burst | gap_hit, corrected

    # -- the multi-tick ------------------------------------------------------

    #: ticks per internal batch; bounds the transient histogram tensors
    #: at ``n_median * TICK_BLOCK * grid`` elements
    TICK_BLOCK = 1024

    def tick_many(
        self, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Consume ``m`` samples per anchor in one vectorized pass.

        ``values`` is ``(n, m)`` in construction order; returns
        ``(flags, corrected)`` of the same shape.  Outputs and the final
        bank state — rings, histograms, cursors, demotions — are
        identical to ``m`` sequential :meth:`tick` calls.

        The median group is evaluated *optimistically*: corrections are
        rare, so the whole block is first computed as if every corrected
        value equalled its raw sample (which makes the per-tick combined
        histogram a cumulative sum of sparse deltas).  Rows whose stream
        does flag an outlier are then patched exactly from that tick
        onward — anchors are independent, so a patch never crosses rows,
        and everything before a row's first flag is already exact.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or values.shape[0] != self.n:
            raise ValueError(
                f"expected ({self.n}, m) matrix, got {values.shape}"
            )
        m = values.shape[1]
        flags = np.zeros((self.n, m), dtype=bool)
        corrected = np.zeros((self.n, m), dtype=np.float64)
        for a in range(0, m, self.TICK_BLOCK):
            b = min(m, a + self.TICK_BLOCK)
            if self._nm:
                f, c = self._tick_median_many(values[self._med_ix_arr, a:b])
                flags[self._med_ix_arr, a:b] = f
                corrected[self._med_ix_arr, a:b] = c
            if self._np:
                f, c = self._tick_periodic_many(
                    values[self._per_ix_arr, a:b]
                )
                flags[self._per_ix_arr, a:b] = f
                corrected[self._per_ix_arr, a:b] = c
        return flags, corrected

    def _tick_median_many(
        self, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        nm, m = v.shape
        flags = np.zeros((nm, m), dtype=bool)
        corrected = np.zeros((nm, m), dtype=np.float64)
        act = self._med_act
        if act.size:
            bad = ~self._on_grid(v[act]).all(axis=1)
            if bad.any():
                # an off-grid value anywhere in the block demotes the row
                # for the whole block; the scalar replay is exact, so the
                # outcome matches tick()'s demote-on-arrival
                for row in act[bad]:
                    self._demote(int(row))
                act = self._med_act
        W = self.window
        r0 = self._raw_len
        c0 = self._corr_len
        if act.size:
            if (
                self._raw_start == 0
                and self._corr_start == 0
                and r0 + m <= W + 1
                and c0 + m <= W
            ):
                # insert-only block (no ring evictions): the two-point
                # row kernel decides every flag exactly from two
                # cumulative-count probes per tick — no per-tick median
                self._tick_median_rows_insert_only(
                    v, act, flags, corrected, r0, c0, m
                )
            else:
                self._tick_median_many_exact(
                    v, act, flags, corrected, r0, c0, m
                )
        else:
            # no vector rows left: advance the shared cursors exactly as
            # m single ticks would (ring contents are only read per row)
            self._raw_start = (
                self._raw_start + max(0, r0 + m - (W + 1))
            ) % (W + 1)
            self._corr_start = (self._corr_start + max(0, c0 + m - W)) % W
        self._raw_len = min(r0 + m, W + 1)
        self._corr_len = min(c0 + m, W)
        self._seen += m
        for row, det in self._demoted.items():
            for j in range(m):
                out, cv = det.process(float(v[row, j]))
                flags[row, j] = out
                corrected[row, j] = cv
        return flags, corrected

    def _tick_median_rows_insert_only(
        self,
        v: np.ndarray,
        act: np.ndarray,
        flags: np.ndarray,
        corrected: np.ndarray,
        r0: int,
        c0: int,
        m: int,
    ) -> None:
        """Exact per-row kernel for insert-only blocks (no evictions).

        The flag test ``|va - med| > thr`` never needs the median itself
        — only whether it falls outside ``[va - thr, va + thr]``, which
        two probes of the combined cumulative count decide exactly: with
        ``C[j, g]`` counting window values ``<= g`` at tick ``j`` and
        medians living on the integer grid,
        ``med > va + thr  <=>  C[j, floor(va + thr)] <= k_j`` and
        ``med < va - thr  <=>  C[j, ceil(va - thr) - 1] > k_j``.
        In an insert-only block ``C[j, g]`` is the base histogram plus
        this block's own pushes, so one per-row ``(m, G_row)``
        double-cumsum table answers every probe — ``G_row`` being the
        row's value range, far below the shared grid.  Actual medians
        are computed only at flagged ticks (rare); each correction
        shifts later counts by ±1, an O(m) probe update, after which the
        remaining flags are re-decided — reproducing the sequential
        semantics exactly.

        Rows commit incrementally (rings extended in place, histogram
        bumped by this block's pushes); the caller advances the shared
        lengths/seen counters once per block.
        """
        G = self.grid_limit
        js = np.arange(m)
        warm = (self._seen + js) >= self.warmup
        any_warm = bool(warm.any())
        k = (r0 + c0 + 2 * js + 1) >> 1
        for row in act.tolist():
            va = v[row]
            q = va.astype(np.int64)
            co = va  # copied lazily at the first flag
            cq = q
            if any_warm:
                thr = float(self._thr[row])
                ghi = np.floor(va + thr).astype(np.int64)
                glo = np.ceil(va - thr).astype(np.int64) - 1
                glo_ok = glo >= 0
                # probe bins above the row's own values count the whole
                # block, so the table never needs more columns than Gq
                Gq = int(q.max()) + 1
                ghi_ix = np.minimum(ghi, Gq - 1)
                glo_ix = np.minimum(np.maximum(glo, 0), Gq - 1)
                one = np.zeros((m, Gq), dtype=np.int32)
                one[js, q] = 1
                # A[j, g] = this block's raw pushes <= g at ticks <= j
                A = one.cumsum(axis=0).cumsum(axis=1)
                hist_row = self._hist[row]
                base_cum = hist_row.cumsum()
                # combined count at the probe bins: base window + raw
                # pushes (ticks <= j) + corrected pushes (ticks < j,
                # optimistically equal to the raw values)
                Chi = base_cum[np.minimum(ghi, G - 1)] + A[js, ghi_ix]
                Chi[1:] += A[js[:-1], ghi_ix[1:]]
                Clo = base_cum[glo_ix] + A[js, glo_ix]
                Clo[1:] += A[js[:-1], glo_ix[1:]]
                flag = warm & ((Chi <= k) | (glo_ok & (Clo > k)))
                while True:
                    nz = np.flatnonzero(flag)
                    if not nz.size:
                        break
                    j = int(nz[0])
                    if co is va:
                        co = va.copy()
                        cq = q.copy()
                    # exact median at the flagged tick only
                    hj = (
                        hist_row
                        + np.bincount(q[: j + 1], minlength=G)
                        + np.bincount(cq[:j], minlength=G)
                    )
                    med = int(
                        np.searchsorted(hj.cumsum(), k[j], side="right")
                    )
                    flags[row, j] = True
                    co[j] = med
                    cq[j] = med
                    flag[j] = False
                    if j + 1 < m:
                        # the corrected push at j replaces the
                        # optimistic raw one in every later tick's count
                        Chi[j + 1:] += (med <= ghi[j + 1:]).astype(
                            np.int64
                        ) - (q[j] <= ghi[j + 1:])
                        Clo[j + 1:] += (med <= glo[j + 1:]).astype(
                            np.int64
                        ) - (q[j] <= glo[j + 1:])
                        flag[j + 1:] = warm[j + 1:] & (
                            (Chi[j + 1:] <= k[j + 1:])
                            | (glo_ok[j + 1:] & (Clo[j + 1:] > k[j + 1:]))
                        )
            corrected[row] = co
            self._raw_ring[row, r0: r0 + m] = va
            self._corr_ring[row, c0: c0 + m] = co
            self._hist[row] += np.bincount(q, minlength=G) + np.bincount(
                cq, minlength=G
            )

    def _tick_median_many_exact(
        self,
        v: np.ndarray,
        act: np.ndarray,
        flags: np.ndarray,
        corrected: np.ndarray,
        r0: int,
        c0: int,
        m: int,
    ) -> None:
        """The optimistic-with-patches exact kernel for ``act`` rows.

        Writes flags/corrected in place and commits the rows' rings and
        histograms canonically (cursor reset to 0); the caller advances
        the shared lengths/seen counters once per block.
        """
        W = self.window
        va = v[act]
        na = act.size
        q = va.astype(np.int64)
        raw_idx = (self._raw_start + np.arange(r0)) % (W + 1)
        corr_idx = (self._corr_start + np.arange(c0)) % W
        raw_prev = self._raw_ring[act][:, raw_idx]
        corr_prev = self._corr_ring[act][:, corr_idx]
        raw_seq = np.concatenate([raw_prev, va], axis=1)
        corr_seq = np.concatenate([corr_prev, va], axis=1)
        # every involved value is on the integer grid, so the live
        # bins are [0, G); medians can never leave that range
        G = int(max(raw_seq.max(), corr_seq.max(initial=0.0))) + 1
        rows = np.arange(na)[:, None]
        cols = np.arange(m)[None, :]
        # per-tick deltas of the combined raw+corrected histogram:
        # raw insert/evict land at their own tick, the corrected
        # push/evict of tick j-1 become visible at tick j's median
        D = np.zeros((na, m, G), dtype=np.int32)
        np.add.at(D, (rows, cols, q), 1)
        j0r = max(0, (W + 1) - r0)
        if j0r < m:
            ev = raw_seq[:, r0 + j0r - (W + 1): r0 + m - (W + 1)]
            np.add.at(D, (rows, cols[:, j0r:], ev.astype(np.int64)), -1)
        if m > 1:
            np.add.at(D, (rows, cols[:, 1:], q[:, :-1]), 1)
        j0c = max(1, (W + 1) - c0)
        if j0c < m:
            ev = corr_seq[:, c0 + j0c - 1 - W: c0 + m - 1 - W]
            np.add.at(D, (rows, cols[:, j0c:], ev.astype(np.int64)), -1)
        hist0 = self._hist[act, :G].astype(np.int32)
        js = np.arange(m)
        n_win = np.minimum(r0 + js + 1, W + 1) + np.minimum(c0 + js, W)
        k = (n_win >> 1).astype(np.int32)
        warm = (self._seen + js) >= self.warmup
        thr = self._thr[act][:, None]
        # C[r, t, g]: how many window values of row r at tick t are
        # <= g — the median is the first bin whose count exceeds k
        C = (hist0[:, None, :] + D.cumsum(axis=1)).cumsum(axis=2)
        med = np.argmax(C > k[None, :, None], axis=2).astype(np.float64)
        fl = warm[None, :] & (np.abs(va - med) > thr)
        # patch each flagged row exactly from its first correction
        # on: the optimistic pass pushed the raw value where tick()
        # would have pushed the median, so replacing that one element
        # shifts the cumulative counts by +-1 between the two bins —
        # from tick j+1 (the push) until tick j+W+1 (its eviction)
        for r in np.flatnonzero(fl.any(axis=1)).tolist():
            start = 0
            while True:
                nxt = np.flatnonzero(fl[r, start:])
                if not nxt.size:
                    break
                j = start + int(nxt[0])
                if j + 1 >= m:
                    break
                mj = int(med[r, j])
                vj = int(q[r, j])
                je = min(j + W + 1, m)
                if mj < vj:
                    C[r, j + 1: je, mj:vj] += 1
                else:
                    C[r, j + 1: je, vj:mj] -= 1
                med[r, j + 1:] = np.argmax(
                    C[r, j + 1:] > k[j + 1:, None], axis=1
                )
                fl[r, j + 1:] = warm[j + 1:] & (
                    np.abs(va[r, j + 1:] - med[r, j + 1:])
                    > self._thr[act[r]]
                )
                start = j + 1
        co = np.where(fl, med, va)
        flags[act] = fl
        corrected[act] = co
        # commit: rewrite the rings canonically and rebuild histograms
        new_rl = min(r0 + m, W + 1)
        new_cl = min(c0 + m, W)
        raw_win = raw_seq[:, r0 + m - new_rl:]
        corr_full = np.concatenate([corr_prev, co], axis=1)
        corr_win = corr_full[:, c0 + m - new_cl:]
        self._raw_ring[act, :new_rl] = raw_win
        if new_cl:
            self._corr_ring[act, :new_cl] = corr_win
        self._raw_start = 0
        self._corr_start = 0
        for i, row in enumerate(act.tolist()):
            self._hist[row] = np.bincount(
                np.concatenate([raw_win[i], corr_win[i]]).astype(
                    np.int64
                ),
                minlength=self.grid_limit,
            )

    def _tick_periodic_many(
        self, v: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        npr, m = v.shape
        k0 = self._per_k
        ks = k0 + 1 + np.arange(m, dtype=np.int64)
        beat = v > 0
        amp = self._amplitude[:, None]
        burst = beat & (v > self._burst_factor[:, None] * amp)
        corrected = np.where(beat, np.where(burst, amp, v), 0.0)
        # the state machine is feed-forward: the last beat before each
        # tick is a prefix maximum, and within one silent run the gap
        # condition is monotone, so the run's single report is its first
        # tick over the threshold (suppressed in the leading run when
        # the gap was already reported before this block)
        lb_incl = np.maximum.accumulate(
            np.where(beat, ks[None, :], np.int64(-1)), axis=1
        )
        lb_incl = np.maximum(lb_incl, self._last_beat[:, None])
        lb_prev = np.concatenate(
            [self._last_beat[:, None], lb_incl[:, :-1]], axis=1
        )
        cond = (
            ~beat
            & (lb_prev >= 0)
            & (
                (ks[None, :] - lb_prev)
                > self._gap_factor[:, None] * self._period[:, None]
            )
        )
        cond_prev = np.concatenate(
            [np.zeros((npr, 1), dtype=bool), cond[:, :-1]], axis=1
        )
        run_id = beat.cumsum(axis=1)
        gap_hit = (
            cond
            & ~cond_prev
            & ~((run_id == 0) & self._gap_reported[:, None])
        )
        corrected = np.where(gap_hit, amp, corrected)
        final_run = run_id[:, -1]
        self._gap_reported = (
            gap_hit & (run_id == final_run[:, None])
        ).any(axis=1) | (self._gap_reported & (final_run == 0))
        self._last_beat = lb_incl[:, -1].copy()
        self._per_k = k0 + m
        return burst | gap_hit, corrected

    def process_matrix(self, x: np.ndarray) -> OutlierResult:
        """Scan ``(n, t)`` signals in one batch (still strictly causal).

        Equivalent to calling each scalar detector's ``process_array`` on
        its row; detectors are independent, so ticking them together
        changes nothing but the constant factor.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != self.n:
            raise ValueError(f"expected ({self.n}, t) matrix, got {x.shape}")
        flags, corrected = self.tick_many(x)
        return OutlierResult(flags=flags, corrected=corrected)

    # -- scalar-compatible state --------------------------------------------

    def state_dicts(self) -> List[dict]:
        """Per-detector states in the scalar ``state_dict`` format."""
        out: List[Optional[dict]] = [None] * self.n
        if self._nm:
            W = self.window
            raw_idx = (self._raw_start + np.arange(self._raw_len)) % (W + 1)
            corr_idx = (self._corr_start + np.arange(self._corr_len)) % W
            for row, i in enumerate(self._med_ix):
                det = self._demoted.get(row)
                if det is not None:
                    out[i] = det.state_dict()
                    continue
                out[i] = {
                    "kind": "median",
                    "threshold": float(self._thr[row]),
                    "window": W,
                    "warmup": self.warmup,
                    "seen": self._seen,
                    "dual": {
                        "capacity": W,
                        "raw": self._raw_ring[row, raw_idx].tolist(),
                        "corr": self._corr_ring[row, corr_idx].tolist(),
                    },
                }
        for row, i in enumerate(self._per_ix):
            lb = int(self._last_beat[row])
            out[i] = {
                "kind": "periodic",
                "period": int(self._period[row]),
                "amplitude": float(self._amplitude[row]),
                "gap_factor": float(self._gap_factor[row]),
                "burst_factor": float(self._burst_factor[row]),
                "last_beat": None if lb < 0 else lb,
                "gap_reported": bool(self._gap_reported[row]),
                "k": self._per_k,
            }
        return out  # type: ignore[return-value]

    def detectors(self) -> List[Detector]:
        """Materialize equivalent scalar detectors (for fallback paths)."""
        return [restore_detector(s) for s in self.state_dicts()]

    @classmethod
    def from_states(
        cls, states: Sequence[dict], grid_limit: int = 512
    ) -> "VectorizedDetectorBank":
        """Rebuild a bank from scalar-format ``state_dict`` entries."""
        return cls(
            [restore_detector(s) for s in states], grid_limit=grid_limit
        )
