"""Signal-class inference and normal-behaviour modeling.

The hybrid method rests on knowing each event type's *normal* behaviour:
"models that characterize the normal behavior of a system and the way
faults affect it".  This module classifies each count signal into the
three classes of Fig. 1 and derives the per-signal outlier threshold that
the paper says is "specified automatically in the preprocessing step
based on knowledge about the normal behavior of the event type"
(section III.B.1).

Classification logic:

* **silent** — the signal is (almost) always zero; any activity is an
  anomaly.  Most event types are silent.
* **periodic** — the autocorrelation function has a strong repeating
  peak; the period is recovered and a seasonal profile describes the
  expected counts.  A *lack* of messages at an expected beat is the
  anomaly (node-crash syndrome).
* **noise** — active but aperiodic; anomalies are count bursts far from
  the rolling median.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.simulation.templates import SignalClass


#: Occupancy below which a signal is considered silent.  Chattering
#: (noise-class) signals are active in a substantial share of samples;
#: an event type present in under ~2 % of samples is a rare event whose
#: every occurrence is informative.
SILENT_OCCUPANCY = 0.02
#: Minimum autocorrelation peak for the periodic call.
PERIODIC_ACF_MIN = 0.4


def estimate_period(x: np.ndarray, min_lag: int = 2) -> Optional[int]:
    """Dominant period (in samples) via the autocorrelation function.

    Computes the biased ACF with one FFT; returns the lag of the highest
    ACF peak past ``min_lag`` if that peak clears
    :data:`PERIODIC_ACF_MIN`, else ``None``.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.size
    if n < 4 * min_lag:
        return None
    xc = x - x.mean()
    denom = float(np.dot(xc, xc))
    if denom <= 0:
        return None
    # FFT-based autocorrelation (zero-padded to avoid circular wrap).
    nfft = 1 << int(np.ceil(np.log2(2 * n - 1)))
    spec = np.fft.rfft(xc, nfft)
    acf = np.fft.irfft(spec * np.conj(spec), nfft)[:n] / denom
    search = acf[min_lag : n // 2]
    if search.size == 0:
        return None
    k = int(np.argmax(search))
    if search[k] < PERIODIC_ACF_MIN:
        return None
    return min_lag + k


def seasonal_profile(x: np.ndarray, period: int) -> np.ndarray:
    """Per-phase median profile of a periodic signal.

    ``profile[p]`` is the median count at phase ``p``; the profile tiled
    to the signal length is the periodic "normal behaviour" estimate.
    """
    x = np.asarray(x, dtype=np.float64)
    if period < 1:
        raise ValueError("period must be >= 1")
    pad = (-x.size) % period
    padded = np.pad(x, (0, pad), constant_values=np.nan)
    folded = padded.reshape(-1, period)
    with np.errstate(all="ignore"):
        profile = np.nanmedian(folded, axis=0)
    return np.nan_to_num(profile)


@dataclass(frozen=True)
class NormalBehavior:
    """The offline characterization of one event-type signal.

    ``threshold`` is the outlier distance bound used by both offline and
    online detection: a sample whose distance from the (rolling or
    seasonal) median exceeds it is an outlier.  ``period`` is in samples
    and only set for periodic signals.
    """

    signal_class: SignalClass
    median: float
    mad: float
    threshold: float
    occupancy: float
    mean_rate: float
    period: Optional[int] = None

    @property
    def robust_sigma(self) -> float:
        """MAD-based robust standard deviation estimate."""
        return 1.4826 * self.mad


def characterize_signal(
    x: np.ndarray,
    silent_occupancy: float = SILENT_OCCUPANCY,
) -> NormalBehavior:
    """Classify one signal and derive its normal-behaviour statistics."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("empty signal")
    occupancy = float(np.count_nonzero(x)) / x.size
    med = float(np.median(x))
    mad = float(np.median(np.abs(x - med)))
    mean_rate = float(x.mean())

    # Periodicity is tested before the silent call: a beat signal with a
    # long period is sparse (low occupancy) yet perfectly regular.
    # Signals too empty for a meaningful ACF skip the test.
    period = estimate_period(x) if occupancy >= 0.002 else None
    if period is not None:
        sclass: SignalClass = SignalClass.PERIODIC
    elif occupancy < silent_occupancy:
        sclass = SignalClass.SILENT
    else:
        sclass = SignalClass.NOISE

    threshold = derive_threshold(med, mad, sclass)
    return NormalBehavior(
        signal_class=sclass,
        median=med,
        mad=mad,
        threshold=threshold,
        occupancy=occupancy,
        mean_rate=mean_rate,
        period=period,
    )


def derive_threshold(
    median: float,
    mad: float,
    signal_class: SignalClass,
    k: float = 4.0,
    min_noise_threshold: float = 1.5,
) -> float:
    """Outlier distance threshold for one signal.

    * silent: any occurrence is an outlier (threshold below one count);
    * noise: ``k`` robust sigmas, floored so singleton blips inside an
      existing noise floor do not fire (that floor is precisely why cache
      errors are hard to predict — their precursors hide under it);
    * periodic: half the typical level, so both doubled counts and
      missing beats trip the detector.
    """
    if signal_class == SignalClass.SILENT:
        return 0.5
    robust_sigma = 1.4826 * mad
    if signal_class == SignalClass.NOISE:
        return max(k * robust_sigma, min_noise_threshold)
    # periodic
    return max(0.5 * max(median, 1.0), k * robust_sigma)
