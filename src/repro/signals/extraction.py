"""Event-count signal extraction.

"We extract the signal for each event type by sampling the number of
event occurrences for every time unit … a sampling rate of 10 seconds"
(section III.A).  :class:`SignalSet` holds all signals of a scenario as a
sparse (event type × sample) count matrix; individual dense signals are
materialized on demand so multi-day scenarios with hundreds of event
types stay memory-friendly.

The online phase "simply concatenates the existing signals with the
information received from the input stream" and keeps "only the last two
months" (section III.A); :meth:`SignalSet.extend` and
:meth:`SignalSet.trim` implement exactly those two operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.simulation.trace import LogRecord

#: The paper's sampling period, in seconds.
DEFAULT_SAMPLING_PERIOD = 10.0


class SignalSet:
    """All event-count signals of one log stream.

    Stored as a CSR matrix of shape ``(n_types, n_samples)`` with int32
    counts.  ``t_start`` anchors sample 0 in scenario time, so trimmed
    (online) sets keep consistent timestamps.
    """

    def __init__(
        self,
        counts: sp.csr_matrix,
        sampling_period: float = DEFAULT_SAMPLING_PERIOD,
        t_start: float = 0.0,
    ) -> None:
        if sampling_period <= 0:
            raise ValueError("sampling_period must be positive")
        self._counts = counts.tocsr()
        self.sampling_period = float(sampling_period)
        self.t_start = float(t_start)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_events(
        cls,
        event_types: np.ndarray,
        timestamps: np.ndarray,
        n_types: int,
        duration: float,
        sampling_period: float = DEFAULT_SAMPLING_PERIOD,
        t_start: float = 0.0,
    ) -> "SignalSet":
        """Build from parallel arrays of event-type ids and timestamps.

        Events outside ``[t_start, t_start + duration)`` are rejected; the
        caller controls windowing explicitly.
        """
        event_types = np.asarray(event_types, dtype=np.int64)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if event_types.shape != timestamps.shape:
            raise ValueError("event_types and timestamps must be parallel")
        n_samples = int(np.ceil(duration / sampling_period))
        if event_types.size:
            if event_types.min() < 0 or event_types.max() >= n_types:
                raise ValueError("event type id out of range")
            rel = timestamps - t_start
            if rel.min() < 0 or rel.max() >= duration:
                raise ValueError("timestamp outside the signal window")
            cols = (rel / sampling_period).astype(np.int64)
            data = np.ones(event_types.size, dtype=np.int32)
            counts = sp.coo_matrix(
                (data, (event_types, cols)), shape=(n_types, n_samples)
            ).tocsr()
        else:
            counts = sp.csr_matrix((n_types, n_samples), dtype=np.int32)
        return cls(counts, sampling_period, t_start)

    # -- shape ----------------------------------------------------------------

    @property
    def n_types(self) -> int:
        """Number of event types (rows)."""
        return self._counts.shape[0]

    @property
    def n_samples(self) -> int:
        """Number of time samples (columns)."""
        return self._counts.shape[1]

    @property
    def t_end(self) -> float:
        """Scenario time just past the last sample."""
        return self.t_start + self.n_samples * self.sampling_period

    def sample_index(self, t: float) -> int:
        """Sample index containing scenario time ``t``."""
        idx = int((t - self.t_start) / self.sampling_period)
        if not 0 <= idx < self.n_samples:
            raise IndexError(f"time {t} outside signal window")
        return idx

    def sample_time(self, idx: int) -> float:
        """Scenario time of the left edge of sample ``idx``."""
        return self.t_start + idx * self.sampling_period

    # -- access -----------------------------------------------------------------

    def signal(self, event_type: int) -> np.ndarray:
        """Dense count signal of one event type (int32 copy)."""
        return np.asarray(
            self._counts.getrow(event_type).todense(), dtype=np.int32
        ).ravel()

    def occurrences(self, event_type: int) -> np.ndarray:
        """Sample indices with at least one occurrence (sorted)."""
        row = self._counts.getrow(event_type)
        return np.sort(row.indices.copy())

    def total_counts(self) -> np.ndarray:
        """Total occurrences per event type."""
        return np.asarray(self._counts.sum(axis=1)).ravel()

    def occupancy(self) -> np.ndarray:
        """Fraction of nonzero samples per event type."""
        nz = np.diff(self._counts.indptr)
        return nz / max(1, self.n_samples)

    def dense(self) -> np.ndarray:
        """Full dense matrix (use only for small sets)."""
        return np.asarray(self._counts.todense(), dtype=np.int32)

    # -- online maintenance ------------------------------------------------------

    def extend(
        self,
        event_types: np.ndarray,
        timestamps: np.ndarray,
        new_end: float,
    ) -> "SignalSet":
        """Concatenate a new chunk of events (returns a new set).

        ``new_end`` is the scenario time up to which the stream has been
        observed; the matrix grows to cover it even if the tail samples
        are empty (silence is information).
        """
        if new_end < self.t_end:
            raise ValueError("new_end must not precede current coverage")
        extra = SignalSet.from_events(
            event_types,
            timestamps,
            n_types=self.n_types,
            duration=new_end - self.t_end,
            sampling_period=self.sampling_period,
            t_start=self.t_end,
        )
        counts = sp.hstack([self._counts, extra._counts], format="csr")
        return SignalSet(counts, self.sampling_period, self.t_start)

    def trim(self, keep_seconds: float) -> "SignalSet":
        """Keep only the trailing ``keep_seconds`` of signal.

        This is the paper's "only the last two months in the on-line
        module" memory bound.
        """
        keep = int(np.ceil(keep_seconds / self.sampling_period))
        if keep >= self.n_samples:
            return self
        cut = self.n_samples - keep
        counts = self._counts[:, cut:]
        return SignalSet(
            counts.tocsr(),
            self.sampling_period,
            self.t_start + cut * self.sampling_period,
        )

    def window(self, t0: float, t1: float) -> "SignalSet":
        """Sub-window ``[t0, t1)`` as a new set."""
        i0 = max(0, int((t0 - self.t_start) / self.sampling_period))
        i1 = min(self.n_samples, int(np.ceil((t1 - self.t_start) / self.sampling_period)))
        if i1 <= i0:
            raise ValueError("empty window")
        return SignalSet(
            self._counts[:, i0:i1].tocsr(),
            self.sampling_period,
            self.t_start + i0 * self.sampling_period,
        )


def extract_signals(
    records: Sequence[LogRecord],
    event_ids: Optional[Sequence[Optional[int]]] = None,
    n_types: Optional[int] = None,
    sampling_period: float = DEFAULT_SAMPLING_PERIOD,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
) -> SignalSet:
    """Extract the :class:`SignalSet` of a record stream.

    ``event_ids`` supplies the event type of each record (e.g. from a
    mined :class:`~repro.helo.template.TemplateTable`); when omitted, the
    records' ground-truth ``event_type`` field is used.  Records whose id
    is ``None`` (unclassified) are skipped.
    """
    if event_ids is None:
        event_ids = [r.event_type for r in records]
    if len(event_ids) != len(records):
        raise ValueError("event_ids must parallel records")
    with obs.span("extract", records=len(records)) as span:
        pairs = [
            (tid, r.timestamp)
            for tid, r in zip(event_ids, records)
            if tid is not None
        ]
        tids = np.array([p[0] for p in pairs], dtype=np.int64)
        times = np.array([p[1] for p in pairs], dtype=np.float64)
        if n_types is None:
            n_types = int(tids.max()) + 1 if tids.size else 1
        if t_start is None:
            t_start = 0.0
        if t_end is None:
            t_end = (
                float(times.max()) if times.size else 0.0
            ) + sampling_period
        signals = SignalSet.from_events(
            tids, times, n_types, t_end - t_start, sampling_period, t_start
        )
        span["n_types"] = signals.n_types
        span["n_samples"] = signals.n_samples
        span["skipped"] = len(records) - len(pairs)
    obs.counter("signals.extractions").inc()
    obs.counter("signals.records_ingested").inc(len(pairs))
    obs.counter("signals.records_unclassified").inc(len(records) - len(pairs))
    return signals
