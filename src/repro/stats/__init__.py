"""Failure statistics: MTTF estimation and distribution checks.

The checkpoint model of section VI.B takes the application MTTF as an
input and "assume[s] the failure distribution for the non-predicted
failures remains exponential".  This package supplies the measurement
side: inter-arrival extraction, MTTF estimation with confidence bounds,
exponential/Weibull fits, and a goodness-of-fit check that validates the
exponential assumption on observed failure streams (the validation the
paper leaves implicit).
"""

from repro.stats.failures import (
    ExponentialFit,
    WeibullFit,
    empirical_cdf,
    estimate_mttf,
    exponential_ks_test,
    fit_exponential,
    fit_weibull,
    interarrival_times,
)

__all__ = [
    "interarrival_times",
    "estimate_mttf",
    "fit_exponential",
    "fit_weibull",
    "ExponentialFit",
    "WeibullFit",
    "exponential_ks_test",
    "empirical_cdf",
]
