"""Failure inter-arrival analysis.

Implements the statistics the checkpoint model consumes:

* :func:`interarrival_times` / :func:`estimate_mttf` — time between
  consecutive failures and its mean with a chi-square confidence
  interval (exact for exponential arrivals);
* :func:`fit_exponential` / :func:`fit_weibull` — maximum-likelihood
  fits; the Weibull shape parameter diagnoses deviation from the
  exponential assumption (k < 1: infant mortality / clustering, k > 1:
  wear-out), the large-scale-failure-study lens of Schroeder & Gibson
  that the paper builds on;
* :func:`exponential_ks_test` — Lilliefors-style Kolmogorov–Smirnov
  check of the exponential assumption with the rate estimated from the
  same sample (critical values via a small Monte-Carlo table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np
from scipy import optimize, stats

from repro.simulation.trace import FaultEvent


def interarrival_times(faults: Iterable[FaultEvent]) -> np.ndarray:
    """Gaps between consecutive failure (fatal) times, in seconds."""
    times = np.sort(np.array([f.fail_time for f in faults], dtype=float))
    if times.size < 2:
        return np.empty(0)
    return np.diff(times)


def estimate_mttf(
    faults: Iterable[FaultEvent], confidence: float = 0.95
) -> Tuple[float, Tuple[float, float]]:
    """MTTF estimate with a confidence interval.

    Returns ``(mttf, (lo, hi))``.  The interval is the exact chi-square
    interval for the mean of exponential inter-arrivals — the
    distribution the checkpoint model assumes; for other distributions it
    is approximate.  Raises on fewer than two failures.
    """
    gaps = interarrival_times(faults)
    if gaps.size == 0:
        raise ValueError("need at least two failures to estimate MTTF")
    n = gaps.size
    total = float(gaps.sum())
    mttf = total / n
    alpha = 1.0 - confidence
    lo = 2.0 * total / stats.chi2.ppf(1.0 - alpha / 2.0, 2 * n)
    hi = 2.0 * total / stats.chi2.ppf(alpha / 2.0, 2 * n)
    return mttf, (lo, hi)


@dataclass(frozen=True)
class ExponentialFit:
    """MLE exponential fit: rate λ and the log-likelihood."""

    rate: float
    log_likelihood: float

    @property
    def mean(self) -> float:
        """Mean inter-arrival (1/λ)."""
        return 1.0 / self.rate


@dataclass(frozen=True)
class WeibullFit:
    """MLE Weibull fit: shape k, scale λ, log-likelihood.

    ``shape ≈ 1`` recovers the exponential; the fitted shape is the
    standard memorylessness diagnostic.
    """

    shape: float
    scale: float
    log_likelihood: float

    @property
    def mean(self) -> float:
        """Distribution mean λ·Γ(1 + 1/k)."""
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)


def fit_exponential(samples: Sequence[float]) -> ExponentialFit:
    """Maximum-likelihood exponential fit."""
    x = np.asarray(samples, dtype=float)
    x = x[x > 0]
    if x.size == 0:
        raise ValueError("no positive samples")
    rate = 1.0 / float(x.mean())
    ll = float(x.size * np.log(rate) - rate * x.sum())
    return ExponentialFit(rate=rate, log_likelihood=ll)


def fit_weibull(samples: Sequence[float]) -> WeibullFit:
    """Maximum-likelihood Weibull fit (shape solved numerically)."""
    x = np.asarray(samples, dtype=float)
    x = x[x > 0]
    if x.size < 2:
        raise ValueError("need at least two positive samples")
    logx = np.log(x)

    def shape_equation(k: float) -> float:
        """MLE stationarity condition for the Weibull shape."""
        xk = x**k
        return (xk * logx).sum() / xk.sum() - 1.0 / k - logx.mean()

    k = float(optimize.brentq(shape_equation, 1e-3, 50.0))
    scale = float((x**k).mean() ** (1.0 / k))
    z = (x / scale) ** k
    ll = float(
        x.size * (np.log(k) - k * np.log(scale))
        + (k - 1.0) * logx.sum()
        - z.sum()
    )
    return WeibullFit(shape=k, scale=scale, log_likelihood=ll)


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted samples and their empirical CDF values."""
    x = np.sort(np.asarray(samples, dtype=float))
    if x.size == 0:
        return x, x
    return x, (np.arange(1, x.size + 1)) / x.size


# Lilliefors critical-value coefficients for the exponential case
# (Lilliefors 1969): D_crit ≈ c_alpha / sqrt(n) for n ≳ 30.
_LILLIEFORS_C = {0.10: 0.96, 0.05: 1.06, 0.01: 1.25}


def exponential_ks_test(
    samples: Sequence[float], alpha: float = 0.05
) -> Tuple[float, float, bool]:
    """Lilliefors KS test of exponentiality (rate estimated from data).

    Returns ``(D, D_critical, is_exponential)`` where ``is_exponential``
    means the exponential hypothesis is *not* rejected at level
    ``alpha``.  Estimating the rate from the same sample invalidates the
    plain KS table; the Lilliefors correction accounts for it.
    """
    if alpha not in _LILLIEFORS_C:
        raise ValueError(f"alpha must be one of {sorted(_LILLIEFORS_C)}")
    x = np.asarray(samples, dtype=float)
    x = x[x > 0]
    if x.size < 5:
        raise ValueError("need at least five samples")
    rate = 1.0 / x.mean()
    xs, ecdf = empirical_cdf(x)
    model = 1.0 - np.exp(-rate * xs)
    d_plus = float(np.max(ecdf - model))
    d_minus = float(np.max(model - (ecdf - 1.0 / x.size)))
    d = max(d_plus, d_minus)
    d_crit = _LILLIEFORS_C[alpha] / math.sqrt(x.size)
    return d, d_crit, d <= d_crit
