"""Mined template model: constant token skeletons with wildcards.

A mined template is the recovered analogue of
:class:`repro.simulation.templates.Template`: a sequence of tokens where
variable positions hold ``None`` (rendered as ``*``).  Templates match a
message when every constant position agrees; this is the regular
expression semantics the paper describes ("templates represent regular
expressions that describe a set of syntactically related messages").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.helo.tokenizer import normalize_tokens, tokenize


@dataclass(frozen=True)
class MinedTemplate:
    """One recovered event type.

    ``tokens`` holds the constant token at each position, or ``None`` for
    a wildcard.  ``template_id`` is assigned by the owning
    :class:`TemplateTable`; ``support`` counts training messages that
    matched during mining.
    """

    tokens: Tuple[Optional[str], ...]
    template_id: int = -1
    support: int = 0

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("empty template")

    @property
    def n_tokens(self) -> int:
        """Number of token positions."""
        return len(self.tokens)

    @property
    def n_wildcards(self) -> int:
        """Number of variable positions."""
        return sum(1 for t in self.tokens if t is None)

    def matches_tokens(self, tokens: Sequence[str]) -> bool:
        """Token-wise match: equal length, constants agree."""
        if len(tokens) != len(self.tokens):
            return False
        for mine, theirs in zip(self.tokens, tokens):
            if mine is not None and mine != theirs:
                return False
        return True

    def matches(self, message: str) -> bool:
        """Match a raw message string (after token normalization)."""
        return self.matches_tokens(normalize_tokens(tokenize(message)))

    def skeleton(self) -> str:
        """Human-readable form with ``*`` wildcards (paper notation)."""
        return " ".join("*" if t is None else t for t in self.tokens)

    def specificity(self) -> float:
        """Fraction of constant positions (1.0 = fully constant)."""
        return 1.0 - self.n_wildcards / self.n_tokens

    def merge(self, other: "MinedTemplate") -> "MinedTemplate":
        """Generalize two same-length templates into their union.

        Positions that disagree become wildcards.  Used by the online
        updater when a new message is one variable field away from an
        existing template.
        """
        if self.n_tokens != other.n_tokens:
            raise ValueError("cannot merge templates of different lengths")
        merged = tuple(
            a if a == b else None for a, b in zip(self.tokens, other.tokens)
        )
        return MinedTemplate(
            tokens=merged,
            template_id=self.template_id,
            support=self.support + other.support,
        )


class TemplateTable:
    """Indexed collection of mined templates with fast lookup.

    Lookup buckets templates by token count; within a bucket the fast
    path dispatches through two structures instead of scanning:

    * an **exact-shape hash** — fully-constant templates keyed by their
      token tuple, so constant messages resolve in one dict probe;
    * a **discrimination index** — wildcarded templates grouped by their
      constant token at one chosen position (the position that splits
      the bucket best), so only the matching group plus the templates
      wildcarded at that position need verification.

    Candidates from both structures are verified with
    :meth:`MinedTemplate.matches_tokens` and the *lowest* matching id
    wins.  Ids are dense and assigned in insertion order, so bucket
    order equals ascending-id order and min-id reproduces the linear
    scan's first-match semantics bit for bit
    (:meth:`classify_tokens_linear` keeps the reference scan; property
    tests assert equivalence).  A bounded memo on normalized token
    shapes short-circuits repeats entirely — shape cardinality is tiny
    next to message cardinality because normalization collapses the
    variable fields.  The index rebuilds lazily after :meth:`add` /
    :meth:`replace`, amortizing online minting storms.
    """

    #: memo bound; normalized-shape cardinality is typically a few
    #: hundred, the bound only guards pathological shape churn.
    _MEMO_MAX = 1 << 16

    def __init__(self, templates: Iterable[MinedTemplate] = ()) -> None:
        self._templates: List[MinedTemplate] = []
        self._buckets: Dict[int, List[int]] = {}
        #: escape hatch: ``False`` routes every lookup through the
        #: reference linear scan (``--no-fast-path``).
        self.use_index = True
        self._index_dirty = True
        self._exact: Dict[Tuple[str, ...], int] = {}
        # bucket length -> (disc position or None, constant-token -> tids,
        #                   tids wildcarded at the disc position)
        self._disc: Dict[int, Tuple[Optional[int], Dict[str, List[int]], List[int]]] = {}
        self._memo: Dict[Tuple[str, ...], Optional[int]] = {}
        #: bumped on every mutation; batch classifiers key caches on it
        self.generation = 0
        self._dispatch_cache: Optional[tuple] = None
        for t in templates:
            self.add(t)

    def __len__(self) -> int:
        return len(self._templates)

    def __iter__(self):
        return iter(self._templates)

    def __getitem__(self, tid: int) -> MinedTemplate:
        return self._templates[tid]

    def add(self, template: MinedTemplate) -> MinedTemplate:
        """Register a template, assigning the next dense id."""
        tid = len(self._templates)
        stored = MinedTemplate(
            tokens=template.tokens, template_id=tid, support=template.support
        )
        self._templates.append(stored)
        self._buckets.setdefault(stored.n_tokens, []).append(tid)
        self._invalidate_index()
        return stored

    def replace(self, tid: int, template: MinedTemplate) -> MinedTemplate:
        """Swap the template stored at ``tid`` (id is preserved).

        Bucket membership may change when constants become wildcards; the
        index is updated accordingly.
        """
        old = self._templates[tid]
        if template.n_tokens != old.n_tokens:
            raise ValueError("replacement must preserve token count")
        stored = MinedTemplate(
            tokens=template.tokens, template_id=tid, support=template.support
        )
        self._templates[tid] = stored
        self._invalidate_index()
        return stored

    # -- fast-path index -----------------------------------------------------

    def _invalidate_index(self) -> None:
        self._index_dirty = True
        self.generation += 1
        if self._memo:
            self._memo.clear()

    def _rebuild_index(self) -> None:
        """Build the exact-shape hash and per-bucket discrimination index."""
        exact: Dict[Tuple[str, ...], int] = {}
        disc: Dict[int, Tuple[Optional[int], Dict[str, List[int]], List[int]]] = {}
        for length, tids in self._buckets.items():
            wild: List[int] = []
            for tid in tids:
                t = self._templates[tid]
                if t.n_wildcards == 0:
                    # first-added (lowest id) wins among duplicate shapes,
                    # mirroring the linear scan
                    exact.setdefault(t.tokens, tid)  # type: ignore[arg-type]
                else:
                    wild.append(tid)
            if not wild:
                continue
            # pick the position where the fewest templates are wildcarded
            # (those must always be verified), breaking ties by how finely
            # the constants split the rest
            best_pos, best_key = None, None
            for pos in range(length):
                groups: Dict[str, int] = {}
                n_wild_here = 0
                for tid in wild:
                    tok = self._templates[tid].tokens[pos]
                    if tok is None:
                        n_wild_here += 1
                    else:
                        groups[tok] = groups.get(tok, 0) + 1
                key = (n_wild_here, max(groups.values()) if groups else 0)
                if best_key is None or key < best_key:
                    best_pos, best_key = pos, key
            by_token: Dict[str, List[int]] = {}
            always: List[int] = []
            for tid in wild:
                tok = self._templates[tid].tokens[best_pos]
                if tok is None:
                    always.append(tid)
                else:
                    by_token.setdefault(tok, []).append(tid)
            disc[length] = (best_pos, by_token, always)
        self._exact = exact
        self._disc = disc
        self._index_dirty = False

    def batch_dispatch(self) -> Dict[int, tuple]:
        """Per-bucket candidate lists for the columnar batch classifier.

        For each token-count bucket: ``(pos, groups, default)`` where
        ``pos`` is the bucket's discrimination position (the one
        :meth:`_rebuild_index` chose; 0 for all-constant buckets),
        ``groups[tok]`` lists ``(tid, spec)`` candidates — every
        template whose token at ``pos`` is ``tok`` or a wildcard, in
        ascending-id order — and ``default`` lists the candidates whose
        ``pos`` token is a wildcard (used when the message token matches
        no group).  ``spec`` is the verification recipe: the template's
        constant ``(position, token)`` pairs excluding ``pos`` when it
        was already matched by group dispatch.

        The first candidate whose spec verifies is the lowest matching
        id, i.e. exactly :meth:`classify_tokens`'s answer: candidate
        lists contain *every* bucket template that can match the
        message (exact shapes included), in id order.  Cached until the
        table mutates (keyed on :attr:`generation`).
        """
        if self._index_dirty:
            self._rebuild_index()
        cached = self._dispatch_cache
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        dispatch: Dict[int, tuple] = {}
        for length, tids in self._buckets.items():
            entry = self._disc.get(length)
            pos = entry[0] if entry is not None and entry[0] is not None else 0
            specs = []
            keys = set()
            for tid in tids:
                t = self._templates[tid]
                ptok = t.tokens[pos]
                if ptok is not None:
                    keys.add(ptok)
                spec = tuple(
                    (j, tok)
                    for j, tok in enumerate(t.tokens)
                    if tok is not None and j != pos
                )
                specs.append((tid, ptok, spec))
            default = [
                (tid, spec) for tid, ptok, spec in specs if ptok is None
            ]
            groups = {
                key: [
                    (tid, spec)
                    for tid, ptok, spec in specs
                    if ptok is None or ptok == key
                ]
                for key in keys
            }
            dispatch[length] = (pos, groups, default)
        self._dispatch_cache = (self.generation, dispatch)
        return dispatch

    def classify_tokens_linear(self, tokens: Sequence[str]) -> Optional[int]:
        """Reference linear bucket scan (first match in id order)."""
        for tid in self._buckets.get(len(tokens), ()):
            if self._templates[tid].matches_tokens(tokens):
                return tid
        return None

    def classify_tokens(self, tokens: Sequence[str]) -> Optional[int]:
        """Template id matching the tokens, or ``None``."""
        if not self.use_index:
            return self.classify_tokens_linear(tokens)
        key = tuple(tokens)
        memo = self._memo
        if key in memo:
            return memo[key]
        if self._index_dirty:
            self._rebuild_index()
        best = self._exact.get(key)
        entry = self._disc.get(len(key))
        if entry is not None:
            pos, by_token, always = entry
            templates = self._templates
            for tid in by_token.get(key[pos], ()):  # type: ignore[index]
                if (best is None or tid < best) and templates[tid].matches_tokens(key):
                    best = tid
                    break  # group lists are id-ordered; first hit is min
            for tid in always:
                if best is not None and tid >= best:
                    break  # id-ordered; nothing smaller remains
                if templates[tid].matches_tokens(key):
                    best = tid
                    break
        if len(memo) >= self._MEMO_MAX:
            memo.clear()
        memo[key] = best
        return best

    def classify(self, message: str) -> Optional[int]:
        """Template id matching a raw message, or ``None``."""
        return self.classify_tokens(normalize_tokens(tokenize(message)))

    def skeletons(self) -> List[str]:
        """All template skeletons, in id order."""
        return [t.skeleton() for t in self._templates]

    # -- checkpoint serialization -------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; ids are positional (dense, in order)."""
        return {
            "templates": [
                {"tokens": list(t.tokens), "support": t.support}
                for t in self._templates
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TemplateTable":
        """Rebuild a table from :meth:`to_dict` output, ids preserved."""
        table = cls()
        for entry in data["templates"]:
            table.add(
                MinedTemplate(
                    tokens=tuple(entry["tokens"]),
                    support=int(entry["support"]),
                )
            )
        return table
