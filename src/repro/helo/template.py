"""Mined template model: constant token skeletons with wildcards.

A mined template is the recovered analogue of
:class:`repro.simulation.templates.Template`: a sequence of tokens where
variable positions hold ``None`` (rendered as ``*``).  Templates match a
message when every constant position agrees; this is the regular
expression semantics the paper describes ("templates represent regular
expressions that describe a set of syntactically related messages").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.helo.tokenizer import normalize_tokens, tokenize


@dataclass(frozen=True)
class MinedTemplate:
    """One recovered event type.

    ``tokens`` holds the constant token at each position, or ``None`` for
    a wildcard.  ``template_id`` is assigned by the owning
    :class:`TemplateTable`; ``support`` counts training messages that
    matched during mining.
    """

    tokens: Tuple[Optional[str], ...]
    template_id: int = -1
    support: int = 0

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("empty template")

    @property
    def n_tokens(self) -> int:
        """Number of token positions."""
        return len(self.tokens)

    @property
    def n_wildcards(self) -> int:
        """Number of variable positions."""
        return sum(1 for t in self.tokens if t is None)

    def matches_tokens(self, tokens: Sequence[str]) -> bool:
        """Token-wise match: equal length, constants agree."""
        if len(tokens) != len(self.tokens):
            return False
        for mine, theirs in zip(self.tokens, tokens):
            if mine is not None and mine != theirs:
                return False
        return True

    def matches(self, message: str) -> bool:
        """Match a raw message string (after token normalization)."""
        return self.matches_tokens(normalize_tokens(tokenize(message)))

    def skeleton(self) -> str:
        """Human-readable form with ``*`` wildcards (paper notation)."""
        return " ".join("*" if t is None else t for t in self.tokens)

    def specificity(self) -> float:
        """Fraction of constant positions (1.0 = fully constant)."""
        return 1.0 - self.n_wildcards / self.n_tokens

    def merge(self, other: "MinedTemplate") -> "MinedTemplate":
        """Generalize two same-length templates into their union.

        Positions that disagree become wildcards.  Used by the online
        updater when a new message is one variable field away from an
        existing template.
        """
        if self.n_tokens != other.n_tokens:
            raise ValueError("cannot merge templates of different lengths")
        merged = tuple(
            a if a == b else None for a, b in zip(self.tokens, other.tokens)
        )
        return MinedTemplate(
            tokens=merged,
            template_id=self.template_id,
            support=self.support + other.support,
        )


class TemplateTable:
    """Indexed collection of mined templates with fast lookup.

    Lookup buckets templates by token count, then scans the bucket for a
    token-wise match.  Buckets hold at most a few dozen templates on real
    catalogs, so :meth:`classify` is effectively O(message length).
    """

    def __init__(self, templates: Iterable[MinedTemplate] = ()) -> None:
        self._templates: List[MinedTemplate] = []
        self._buckets: Dict[int, List[int]] = {}
        for t in templates:
            self.add(t)

    def __len__(self) -> int:
        return len(self._templates)

    def __iter__(self):
        return iter(self._templates)

    def __getitem__(self, tid: int) -> MinedTemplate:
        return self._templates[tid]

    def add(self, template: MinedTemplate) -> MinedTemplate:
        """Register a template, assigning the next dense id."""
        tid = len(self._templates)
        stored = MinedTemplate(
            tokens=template.tokens, template_id=tid, support=template.support
        )
        self._templates.append(stored)
        self._buckets.setdefault(stored.n_tokens, []).append(tid)
        return stored

    def replace(self, tid: int, template: MinedTemplate) -> MinedTemplate:
        """Swap the template stored at ``tid`` (id is preserved).

        Bucket membership may change when constants become wildcards; the
        index is updated accordingly.
        """
        old = self._templates[tid]
        if template.n_tokens != old.n_tokens:
            raise ValueError("replacement must preserve token count")
        stored = MinedTemplate(
            tokens=template.tokens, template_id=tid, support=template.support
        )
        self._templates[tid] = stored
        return stored

    def classify_tokens(self, tokens: Sequence[str]) -> Optional[int]:
        """Template id matching the tokens, or ``None``."""
        for tid in self._buckets.get(len(tokens), ()):
            if self._templates[tid].matches_tokens(tokens):
                return tid
        return None

    def classify(self, message: str) -> Optional[int]:
        """Template id matching a raw message, or ``None``."""
        return self.classify_tokens(normalize_tokens(tokenize(message)))

    def skeletons(self) -> List[str]:
        """All template skeletons, in id order."""
        return [t.skeleton() for t in self._templates]

    # -- checkpoint serialization -------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; ids are positional (dense, in order)."""
        return {
            "templates": [
                {"tokens": list(t.tokens), "support": t.support}
                for t in self._templates
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TemplateTable":
        """Rebuild a table from :meth:`to_dict` output, ids preserved."""
        table = cls()
        for entry in data["templates"]:
            table.add(
                MinedTemplate(
                    tokens=tuple(entry["tokens"]),
                    support=int(entry["support"]),
                )
            )
        return table
