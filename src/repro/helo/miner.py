"""Offline hierarchical template mining.

The miner recovers event types from a corpus of raw messages in three
stages, mirroring HELO's hierarchical splitting:

1. **Normalize** — obviously-variable tokens (numbers, hex, paths) become
   wildcards (:func:`repro.helo.tokenizer.normalize_tokens`).
2. **Pre-cluster** — messages are grouped by token count.
3. **Split** — each group is recursively partitioned on the most
   discriminating token position: the constant position with the fewest
   distinct values.  A position whose distinct-value count exceeds
   ``max_distinct`` (relative to group size) is declared variable.  When
   no position can split a group further, the group becomes one template:
   constant where all members agree, wildcard elsewhere.

The recursion depth is bounded by the message length, and each message is
touched O(length · depth) times, so mining a million lines stays in
seconds — important because the paper re-runs mining online.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.helo.template import MinedTemplate, TemplateTable
from repro.helo.tokenizer import normalize_tokens, tokenize


@dataclass
class MinerConfig:
    """Tuning knobs of the hierarchical miner.

    A position is a split candidate when its distinct-value count is at
    most ``max(max_distinct_abs, max_distinct_ratio * group_size)`` and
    strictly below the group size (a position where nearly every shape
    differs is a variable field, not vocabulary).  ``min_group``: groups
    smaller than this are not split further.

    ``min_value_support`` rescues vocabulary splits in tiny groups: a
    position where *every* distinct value is backed by at least this many
    raw messages may split even when each value appears in only one shape
    (frequent renders are words; one-off renders are variable fields).
    """

    max_distinct_ratio: float = 0.3
    max_distinct_abs: int = 12
    min_group: int = 2
    min_value_support: int = 5


class HELOMiner:
    """Mines a :class:`TemplateTable` from raw messages."""

    def __init__(self, config: Optional[MinerConfig] = None) -> None:
        self.config = config or MinerConfig()

    # -- public API ---------------------------------------------------------

    def fit(self, messages: Iterable[str]) -> TemplateTable:
        """Mine templates from a message corpus.

        Duplicate messages are collapsed before clustering (with counts
        retained as support), which makes mining insensitive to volume
        skew between chatty and quiet event types.
        """
        with obs.span("mine_templates") as span:
            counts: Counter = Counter()
            n_messages = 0
            for msg in messages:
                n_messages += 1
                norm = tuple(normalize_tokens(tokenize(msg)))
                if norm:
                    counts[norm] += 1

            by_len: Dict[int, List[Tuple[Tuple[str, ...], int]]] = (
                defaultdict(list)
            )
            for norm, n in counts.items():
                by_len[len(norm)].append((norm, n))

            table = TemplateTable()
            for length in sorted(by_len):
                for group in self._split(by_len[length]):
                    table.add(self._collapse(group))
            span["messages"] = n_messages
            span["shapes"] = len(counts)
            span["templates"] = len(table)
        obs.counter("helo.messages_mined").inc(n_messages)
        obs.counter("helo.templates_mined").inc(len(table))
        return table

    def fit_transform(
        self, messages: Sequence[str]
    ) -> Tuple[TemplateTable, List[int]]:
        """Mine templates and classify the training messages.

        Returns the table and one template id per input message.  By
        construction every training message matches some mined template.
        """
        table = self.fit(messages)
        ids: List[int] = []
        for msg in messages:
            tid = table.classify_tokens(normalize_tokens(tokenize(msg)))
            if tid is None:  # pragma: no cover - defensive
                raise RuntimeError(f"training message failed to classify: {msg!r}")
            ids.append(tid)
        return table, ids

    # -- internals ------------------------------------------------------------

    def _split(
        self, group: List[Tuple[Tuple[str, ...], int]]
    ) -> List[List[Tuple[Tuple[str, ...], int]]]:
        """Recursively partition one same-length group."""
        if len(group) < self.config.min_group:
            return [group]
        pos = self._best_split_position(group)
        if pos is None:
            return [group]
        parts: Dict[str, List[Tuple[Tuple[str, ...], int]]] = defaultdict(list)
        for norm, n in group:
            parts[norm[pos]].append((norm, n))
        if len(parts) <= 1:  # pragma: no cover - guarded by caller
            return [group]
        out: List[List[Tuple[Tuple[str, ...], int]]] = []
        for sub in parts.values():
            out.extend(self._split(sub))
        return out

    def _best_split_position(
        self, group: List[Tuple[Tuple[str, ...], int]]
    ) -> Optional[int]:
        """Position to split on: fewest distinct values, at least 2.

        Positions exceeding the distinct-value thresholds are variable and
        never split on; already-constant positions cannot split.  Ties go
        to the leftmost position (message heads are most template-like).
        """
        length = len(group[0][0])
        size = len(group)
        limit = min(
            size - 1,
            max(
                self.config.max_distinct_abs,
                int(self.config.max_distinct_ratio * size),
            ),
        )
        best_pos, best_card = None, None
        for pos in range(length):
            support: Dict[str, int] = defaultdict(int)
            for norm, n in group:
                support[norm[pos]] += n
            card = len(support)
            if card < 2 or "*" in support:
                continue
            if card > limit:
                # Rescue: every value individually frequent => vocabulary.
                if min(support.values()) < self.config.min_value_support:
                    continue
            if best_card is None or card < best_card:
                best_pos, best_card = pos, card
        return best_pos

    @staticmethod
    def _collapse(group: List[Tuple[Tuple[str, ...], int]]) -> MinedTemplate:
        """Turn one leaf group into a template.

        A position is constant iff all members agree on a non-wildcard
        token; everything else becomes a wildcard.
        """
        support = sum(n for _, n in group)
        first = group[0][0]
        tokens: List[Optional[str]] = []
        for pos in range(len(first)):
            values = {norm[pos] for norm, _ in group}
            if len(values) == 1 and "*" not in values:
                tokens.append(first[pos])
            else:
                tokens.append(None)
        return MinedTemplate(tokens=tuple(tokens), support=support)
