"""Message tokenization and variable-token heuristics.

Real log-template miners first normalize obviously variable fields —
numbers, hexadecimal words, file paths, IP-ish tokens — because treating
every distinct number as a distinct word explodes the vocabulary.  The
same heuristics appear in HELO and in most published log parsers.
"""

from __future__ import annotations

import re
from typing import List, Tuple

_HEX_RE = re.compile(r"^(0x)?[0-9a-fA-F]+$")
_NUM_RE = re.compile(r"^[+-]?\d+(\.\d+)?$")
_PATH_RE = re.compile(r"^(/[\w.\-]+)+/?$")
_KV_RE = re.compile(r"^([A-Za-z_]+[.:=])((0x)?[0-9a-fA-F]*\d[0-9a-fA-F]*|\d+(\.\d+)?)$")


def is_variable_token(token: str) -> bool:
    """Heuristic: is this token almost certainly a variable field?

    Pure numbers, ``0x`` hex literals, digit-bearing hex words and
    filesystem paths are variable.  Tokens that merely *contain* digits
    in a non-hex shape (``1:136``) are left alone so the clustering step
    can decide from cross-message evidence.
    """
    if not token:
        return False
    if _NUM_RE.match(token):
        return True
    if _HEX_RE.match(token) and (
        token.startswith("0x")
        or (len(token) >= 4 and any(c.isdigit() for c in token))
    ):
        return True
    if _PATH_RE.match(token) and "/" in token:
        return True
    return False


def tokenize(message: str) -> List[str]:
    """Split a message into whitespace tokens, lowercased.

    Lowercasing matches HELO's case-insensitive clustering; the paper's
    template listings are all lowercase for the same reason.
    """
    return message.lower().split()


def normalize_token(token: str) -> str:
    """Canonical form of one token: itself, ``*``, or ``key:*``.

    Register-dump tokens like ``lr:0x5e3a91`` keep their key and
    wildcard the value (``lr:*``) — matching the paper's own template
    notation (``lr:* cr:* xer:* ctr:*``, ``PLB.*``).  Without this, every
    render of a key:value field is a distinct shape and the containing
    token-length group becomes unsplittable.
    """
    if is_variable_token(token):
        return "*"
    m = _KV_RE.match(token)
    if m:
        return m.group(1) + "*"
    return token


#: memo for :func:`normalize_token`.  The token vocabulary of a log
#: stream repeats heavily (the same daemons emit the same words), so the
#: regex cascade in :func:`is_variable_token` runs once per distinct
#: token instead of once per occurrence.  ``normalize_token`` is a pure
#: function of its argument, so caching cannot change results; the cache
#: is cleared wholesale when full, which keeps the hot vocabulary warm
#: while bounding memory against unbounded unique-id churn.
_NORM_CACHE: dict = {}
_NORM_CACHE_MAX = 1 << 16


def normalize_tokens(tokens: List[str]) -> List[str]:
    """Replace variable tokens with ``*`` (or ``key:*``) wildcards."""
    cache = _NORM_CACHE
    out = []
    for t in tokens:
        v = cache.get(t)
        if v is None:
            v = normalize_token(t)
            if len(cache) >= _NORM_CACHE_MAX:
                cache.clear()
            cache[t] = v
        out.append(v)
    return out


#: memo for the *raw* (un-lowercased) token → normalized form, used by
#: the columnar batch classifier so it can normalize straight from
#: ``message.split()`` tokens without building the lowercased message.
#: ``msg.lower().split() == [t.lower() for t in msg.split()]`` (Unicode
#: case mapping never creates or removes whitespace for str.split's
#: default separator set), so caching on the raw token is sound.
_RAW_NORM_CACHE: dict = {}


def normalize_raw_token(token: str) -> str:
    """Normalized form of one raw (not yet lowercased) token, memoized."""
    cache = _RAW_NORM_CACHE
    v = cache.get(token)
    if v is None:
        v = normalize_token(token.lower())
        if len(cache) >= _NORM_CACHE_MAX:
            cache.clear()
        cache[token] = v
    return v


def signature(tokens: List[str]) -> Tuple[int, str]:
    """Coarse pre-clustering key: (token count, first constant token).

    Messages in the same template always share their token count (the
    wildcards substitute single tokens in this model) and, in practice,
    their leading constant token; keying on both keeps cluster inputs
    small so the per-cluster mining stays cheap.
    """
    first = ""
    for t in tokens:
        if not is_variable_token(t):
            first = t
            break
    return len(tokens), first
