"""HELO — Hierarchical Event Log Organizer (template mining).

The paper preprocesses raw logs with HELO [15]: an initial pass clusters
syntactically similar message lines into *templates* (regular expressions
over the constant tokens), which define the system's event types; an
online variant keeps the template set current as software updates change
the message vocabulary (section III.A).

This package is a from-scratch reimplementation of that functionality:

* :mod:`repro.helo.tokenizer` — message tokenization with variable-token
  heuristics (numbers, hex words, paths);
* :mod:`repro.helo.template` — the mined-template model (constant tokens
  with ``*`` wildcards) and matching;
* :mod:`repro.helo.miner` — the offline hierarchical miner;
* :mod:`repro.helo.online` — the online matcher/updater.
"""

from repro.helo.tokenizer import tokenize, is_variable_token
from repro.helo.template import MinedTemplate, TemplateTable
from repro.helo.miner import HELOMiner
from repro.helo.online import OnlineHELO

__all__ = [
    "tokenize",
    "is_variable_token",
    "MinedTemplate",
    "TemplateTable",
    "HELOMiner",
    "OnlineHELO",
]
