"""Batch parser/tokenizer: raw text lines → :class:`RecordBatch`.

This is the columnar front door: one pass over the lines builds the
timestamp/location/severity arrays *and* the per-record token lists
(cached on ``batch.token_lists`` so template classification never
re-splits a message).  Semantics are exactly those of
:func:`repro.simulation.trace.parse_log_line` +
:func:`~repro.simulation.trace.read_log`:

- blank (whitespace-only) lines are skipped silently;
- malformed lines raise ``ValueError("malformed log line: ...")``
  unless ``lenient=True``, in which case they are skipped and counted
  once on the shared ``ingest.malformed_lines`` obs counter;
- severity parsing accepts names, aliases, and numeric ladder values
  (memoized per distinct raw token — real logs carry a handful).

In lenient mode timestamps are decoded in one vectorized
``np.asarray(..., float64)`` pass (numpy's string parser agrees with
Python ``float()`` on every accepted form; a per-row fallback re-parses
only when the bulk pass rejects the column, so a malformed timestamp
never takes its neighbours down).  Strict mode parses per row so the
*first* malformed line raises, exactly like the scalar reader.

``tests/test_columnar.py`` holds the line-level equivalence property:
for any input, ``parse_lines_batch(lines).to_records()`` equals
``[parse_log_line(l) for l in lines]`` modulo the skipped lines.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.columnar import RecordBatch
from repro.simulation.trace import Severity

__all__ = ["parse_lines_batch", "read_log_batch"]

#: bound on the raw-severity-token memo; distinct tokens past this are
#: still parsed correctly, just not cached
_SEV_CACHE_MAX = 1024


def parse_lines_batch(
    lines: Iterable[str], lenient: bool = False
) -> RecordBatch:
    """Parse text log lines into one :class:`RecordBatch`.

    Mirrors ``[parse_log_line(line) for line in lines]`` byte-for-byte
    (see module docstring for the blank/malformed policy), but builds
    the columnar arrays directly and caches token lists for the
    classifier.
    """
    ts_strs: List[str] = []
    lid_list: List[int] = []
    sev_list: List[int] = []
    msgs: List[str] = []
    toks: List[List[str]] = []
    pool: List[str] = []
    loc_index: dict = {}
    sev_cache: dict = {}
    ts_append = ts_strs.append
    lid_append = lid_list.append
    sev_append = sev_list.append
    msg_append = msgs.append
    tok_append = toks.append
    loc_get = loc_index.get
    sev_get = sev_cache.get
    pool_append = pool.append
    skipped = 0
    for raw in lines:
        line = raw.rstrip("\n")
        if not line or line.isspace():
            continue
        parts = line.split(" ", 3)
        if len(parts) != 4:
            if lenient:
                skipped += 1
                continue
            raise ValueError(f"malformed log line: {line!r}")
        ts_s, loc, sev_s, msg = parts
        sev = sev_get(sev_s)
        if sev is None:
            try:
                sev = int(Severity.parse(sev_s))
            except ValueError:
                if lenient:
                    skipped += 1
                    continue
                raise ValueError(f"malformed log line: {line!r}") from None
            if len(sev_cache) < _SEV_CACHE_MAX:
                sev_cache[sev_s] = sev
        if not lenient:
            # strict mode decodes per row so the *first* bad line raises
            try:
                float(ts_s)
            except ValueError:
                raise ValueError(f"malformed log line: {line!r}") from None
        lid = loc_get(loc)
        if lid is None:
            lid = len(pool)
            loc_index[loc] = lid
            pool_append(loc)
        ts_append(ts_s)
        lid_append(lid)
        sev_append(sev)
        msg_append(msg)
        tok_append(msg.split())
    try:
        timestamps = np.asarray(ts_strs, dtype=np.float64)
    except ValueError:
        timestamps, skipped = _timestamp_fallback(
            ts_strs, lid_list, sev_list, msgs, toks, skipped
        )
    if skipped:
        from repro import obs

        obs.counter("ingest.malformed_lines").inc(skipped)
    return RecordBatch(
        timestamps,
        np.asarray(lid_list, dtype=np.int32),
        np.asarray(sev_list, dtype=np.int8),
        msgs,
        pool,
        loc_index=loc_index,
        token_lists=toks,
    )


def _timestamp_fallback(ts_strs, lid_list, sev_list, msgs, toks, skipped):
    """Per-row timestamp decode after a bulk reject (lenient mode only).

    Rows whose timestamp Python ``float()`` also rejects are dropped
    from every column and counted as skipped; the rest are kept, so one
    corrupt timestamp costs one record, not the whole batch.
    """
    values: List[float] = []
    keep: List[int] = []
    for i, s in enumerate(ts_strs):
        try:
            values.append(float(s))
        except ValueError:
            skipped += 1
            continue
        keep.append(i)
    if len(keep) != len(ts_strs):
        lid_list[:] = [lid_list[i] for i in keep]
        sev_list[:] = [sev_list[i] for i in keep]
        msgs[:] = [msgs[i] for i in keep]
        toks[:] = [toks[i] for i in keep]
    return np.asarray(values, dtype=np.float64), skipped


def read_log_batch(fh, lenient: bool = False) -> RecordBatch:
    """Columnar counterpart of :func:`repro.simulation.trace.read_log`."""
    return parse_lines_batch(fh, lenient=lenient)
