"""Online template matching and incremental vocabulary updates.

In the online phase "we use HELO on-line to keep the set of templates
updated and relevant to the output of the system" (section III.A):
software upgrades and configuration changes introduce new message shapes
over a system's lifetime, so the matcher must absorb unseen messages
without a full re-mine.

:class:`OnlineHELO` classifies each incoming message against the current
:class:`~repro.helo.template.TemplateTable`.  Misses go to a buffer; when
the buffer holds enough same-length, same-shape evidence the updater
either *generalizes* an existing template (one constant position becomes a
wildcard) or mints a new one.  Every message therefore gets an id
eventually, and ids are stable — existing signals never need re-keying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.helo import tokenizer
from repro.helo.miner import HELOMiner, MinerConfig
from repro.helo.template import MinedTemplate, TemplateTable
from repro.helo.tokenizer import (
    normalize_raw_token,
    normalize_tokens,
    tokenize,
)


@dataclass
class OnlineConfig:
    """Online updater knobs.

    ``new_template_min_evidence``: distinct normalized shapes required in
    the miss buffer before a new template is minted.
    ``generalize_max_mismatch``: a miss within this many constant-position
    disagreements of an existing template generalizes it instead of
    becoming new evidence.
    ``buffer_cap``: misses kept per token-length bucket before the oldest
    evidence is dropped (bounds memory on hostile input).
    ``max_length_buckets``: distinct token-length buckets kept; hostile
    input varying message length on every line would otherwise grow the
    buffer dict without bound.  Least-recently-hit buckets are evicted.
    """

    new_template_min_evidence: int = 3
    generalize_max_mismatch: int = 1
    buffer_cap: int = 512
    max_length_buckets: int = 64


class OnlineHELO:
    """Streaming classifier over an evolving template table."""

    def __init__(
        self,
        table: Optional[TemplateTable] = None,
        config: Optional[OnlineConfig] = None,
    ) -> None:
        self.table = table if table is not None else TemplateTable()
        self.config = config or OnlineConfig()
        # insertion order doubles as bucket LRU (see _buffer_for)
        self._miss_buffer: Dict[int, List[Tuple[str, ...]]] = {}
        #: ids of templates created or generalized online (observability).
        self.updated_ids: List[int] = []
        #: classification misses seen so far (batch metrics read this).
        self._n_misses = 0

    # -- classification ---------------------------------------------------

    def observe(self, message: str) -> Optional[int]:
        """Classify one message; may update the table on a miss.

        Returns the template id, or ``None`` while evidence for a brand
        new template is still accumulating.
        """
        norm = tuple(normalize_tokens(tokenize(message)))
        if not norm:
            return None
        tid = self.table.classify_tokens(list(norm))
        if tid is not None:
            return tid
        return self._handle_miss(norm)

    def observe_many(self, messages: List[str]) -> List[Optional[int]]:
        """Classify a batch, applying updates as they trigger.

        Metrics are batch-granular (one registry update per call) so the
        per-message hot loop stays untouched.
        """
        misses_before = self._n_misses
        updates_before = len(self.updated_ids)
        ids = [self.observe(m) for m in messages]
        if messages:
            obs.counter("helo.online.observed").inc(len(messages))
            obs.counter("helo.online.misses").inc(
                self._n_misses - misses_before
            )
            obs.counter("helo.online.table_updates").inc(
                len(self.updated_ids) - updates_before
            )
        return ids

    def observe_tokens_batch(self, token_lists) -> "np.ndarray":
        """Columnar :meth:`observe_many`: raw token lists → id array.

        ``token_lists`` are per-record ``message.split()`` results (the
        batch parser caches them on ``RecordBatch.token_lists``).  Each
        record dispatches through :meth:`TemplateTable.batch_dispatch`
        candidate lists, normalizing only the token positions a
        candidate's verification spec needs — misses fall back to the
        exact scalar :meth:`_handle_miss` (same table mutations, same
        minting), after which the dispatch cache is refreshed if the
        table changed.  Returns int64 ids with ``-1`` for ``None``.

        Results (ids *and* table mutations) are identical to
        ``observe_many(messages)`` for the messages the token lists came
        from; ``tests/test_columnar.py`` holds the property.  Only valid
        while ``table.use_index`` is True (callers route
        ``--no-fast-path`` through the object path).
        """
        n = len(token_lists)
        ids = np.empty(n, dtype=np.int64)
        if n == 0:
            return ids
        misses_before = self._n_misses
        updates_before = len(self.updated_ids)
        table = self.table
        dispatch = table.batch_dispatch()
        gen = table.generation
        cache = tokenizer._RAW_NORM_CACHE
        cache_get = cache.get
        for i, toks in enumerate(token_lists):
            if not toks:
                ids[i] = -1
                continue
            tid = -1
            entry = dispatch.get(len(toks))
            if entry is not None:
                pos, groups, default = entry
                raw = toks[pos]
                nt = cache_get(raw)
                if nt is None:
                    nt = normalize_raw_token(raw)
                for cand_tid, spec in groups.get(nt, default):
                    for j, const in spec:
                        raw = toks[j]
                        nj = cache_get(raw)
                        if nj is None:
                            nj = normalize_raw_token(raw)
                        if nj != const:
                            break
                    else:
                        tid = cand_tid
                        break
            if tid < 0:
                norm = []
                for raw in toks:
                    nj = cache_get(raw)
                    if nj is None:
                        nj = normalize_raw_token(raw)
                    norm.append(nj)
                res = self._handle_miss(tuple(norm))
                if res is not None:
                    tid = res
                if table.generation != gen:
                    dispatch = table.batch_dispatch()
                    gen = table.generation
            ids[i] = tid
        obs.counter("helo.online.observed").inc(n)
        obs.counter("helo.online.misses").inc(self._n_misses - misses_before)
        obs.counter("helo.online.table_updates").inc(
            len(self.updated_ids) - updates_before
        )
        return ids

    # -- miss handling ------------------------------------------------------

    def _buffer_for(self, length: int) -> List[Tuple[str, ...]]:
        """The miss bucket for ``length``, with LRU bucket eviction.

        Accessing a bucket marks it most-recently-used; when a new
        length would exceed ``max_length_buckets``, the stalest bucket's
        evidence is discarded — an adversary cycling message lengths can
        therefore never grow the buffer dict beyond the cap.
        """
        buf = self._miss_buffer.pop(length, None)
        if buf is None:
            buf = []
            if len(self._miss_buffer) >= self.config.max_length_buckets:
                evicted = next(iter(self._miss_buffer))
                del self._miss_buffer[evicted]
                obs.counter("helo.online.buckets_evicted").inc()
        self._miss_buffer[length] = buf
        return buf

    def _handle_miss(self, norm: Tuple[str, ...]) -> Optional[int]:
        self._n_misses += 1
        near = self._nearest_template(norm)
        if near is not None:
            tid, mismatches = near
            if mismatches <= self.config.generalize_max_mismatch:
                self._generalize(tid, norm)
                return tid
        buf = self._buffer_for(len(norm))
        buf.append(norm)
        if len(buf) > self.config.buffer_cap:
            del buf[0]
        return self._try_mint(norm)

    def _nearest_template(
        self, norm: Tuple[str, ...]
    ) -> Optional[Tuple[int, int]]:
        """Closest same-length template: (id, constant mismatches)."""
        best: Optional[Tuple[int, int]] = None
        for tpl in self.table:
            if tpl.n_tokens != len(norm):
                continue
            mism = 0
            for mine, theirs in zip(tpl.tokens, norm):
                if mine is not None and mine != theirs:
                    mism += 1
            # Require some shared constant so we never generalize an
            # unrelated template into mush.
            shared = sum(
                1
                for mine, theirs in zip(tpl.tokens, norm)
                if mine is not None and mine == theirs
            )
            if shared == 0:
                continue
            if best is None or mism < best[1]:
                best = (tpl.template_id, mism)
        return best

    def _generalize(self, tid: int, norm: Tuple[str, ...]) -> None:
        """Wildcard the disagreeing positions of template ``tid``."""
        tpl = self.table[tid]
        merged = tuple(
            mine if (mine is not None and mine == theirs) else
            (mine if mine is None or mine == theirs else None)
            for mine, theirs in zip(tpl.tokens, norm)
        )
        self.table.replace(
            tid,
            MinedTemplate(tokens=merged, support=tpl.support + 1),
        )
        self.updated_ids.append(tid)
        obs.counter("helo.online.generalized").inc()

    def _try_mint(self, norm: Tuple[str, ...]) -> Optional[int]:
        """Mint a new template once the buffer shows stable evidence.

        Evidence = buffered shapes that agree with ``norm`` on at least
        half of their constant positions; ``new_template_min_evidence``
        of them (including duplicates) trigger the mint.
        """
        buf = self._buffer_for(len(norm))
        kin = [b for b in buf if self._kinship(b, norm)]
        if len(kin) < self.config.new_template_min_evidence:
            return None
        tokens: List[Optional[str]] = []
        for pos in range(len(norm)):
            values = {b[pos] for b in kin}
            if len(values) == 1 and "*" not in values:
                tokens.append(norm[pos])
            else:
                tokens.append(None)
        stored = self.table.add(
            MinedTemplate(tokens=tuple(tokens), support=len(kin))
        )
        self._miss_buffer[len(norm)] = [b for b in buf if b not in kin]
        self.updated_ids.append(stored.template_id)
        obs.counter("helo.online.minted").inc()
        return stored.template_id

    @staticmethod
    def _kinship(a: Tuple[str, ...], b: Tuple[str, ...]) -> bool:
        """Do two same-length shapes agree on >= half their tokens?"""
        agree = sum(1 for x, y in zip(a, b) if x == y)
        return agree * 2 >= len(a)

    # -- checkpoint serialization -------------------------------------------

    def state_dict(self) -> dict:
        """Full online state as a JSON-ready dict (crash recovery).

        Captures the template table *and* the miss buffers: evidence
        accumulating toward a future mint survives a restart, so a
        resumed run classifies the remaining stream identically to an
        uninterrupted one.
        """
        return {
            "table": self.table.to_dict(),
            "miss_buffer": {
                str(length): [list(shape) for shape in shapes]
                for length, shapes in self._miss_buffer.items()
            },
            "updated_ids": list(self.updated_ids),
            "n_misses": self._n_misses,
            "config": {
                "new_template_min_evidence":
                    self.config.new_template_min_evidence,
                "generalize_max_mismatch":
                    self.config.generalize_max_mismatch,
                "buffer_cap": self.config.buffer_cap,
                "max_length_buckets": self.config.max_length_buckets,
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineHELO":
        """Rebuild a matcher from :meth:`state_dict` output."""
        helo = cls(
            table=TemplateTable.from_dict(state["table"]),
            config=OnlineConfig(**state["config"]),
        )
        for length, shapes in state["miss_buffer"].items():
            helo._miss_buffer[int(length)] = [
                tuple(shape) for shape in shapes
            ]
        helo.updated_ids = list(state["updated_ids"])
        helo._n_misses = int(state["n_misses"])
        return helo


def bootstrap_online(
    messages: List[str], miner_config: Optional[MinerConfig] = None
) -> OnlineHELO:
    """Convenience: offline-mine a corpus, return the online matcher."""
    miner = HELOMiner(miner_config)
    return OnlineHELO(table=miner.fit(messages))
