"""Continuous stage-level sampling profiler.

``cProfile`` on the hot path costs an order of magnitude; a *sampling*
profiler costs one background thread that wakes every
``interval`` seconds and asks :func:`repro.obs.tracing.thread_stacks`
which pipeline stage every thread is inside.  Because attribution rides
the span stacks the pipeline already maintains (``stream`` →
``classify``/``feed`` → ...), the output speaks the pipeline's own
stage names instead of Python frames — exactly the granularity ROADMAP
item 2 needs to find the next microsecond.

Accounting per sample (elapsed wall time ``dt`` since the previous
sample, split evenly across threads with a non-empty stack):

* **self time** — the innermost span name gets the share;
* **total time** — every distinct name on the stack gets the share;
* **collapsed stacks** — the ``outer;inner`` path's sample count, the
  flamegraph-compatible export (`flamegraph.pl`, speedscope, ...);
* samples where *no* thread has an open span accrue to
  ``unattributed_seconds`` — the denominator term that keeps the
  attribution honest.

Overhead is bounded by construction: the sampler does O(threads ×
stack depth) string work per tick, ~100 ticks/s at the default
interval.  ``benchmarks/perf_smoke.py`` gates the measured cost at 5%
of fast-path throughput in CI.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Dict, List, Optional

from repro.obs.metrics import gauge
from repro.obs.tracing import thread_stacks

__all__ = [
    "StageProfiler",
    "get_profiler",
    "reset_profiler",
    "set_profiler",
]

#: Default wake-up interval in seconds (~100 Hz).
DEFAULT_INTERVAL = 0.01

#: Distinct collapsed stacks kept before new paths are dropped (the
#: span-stack paths of a pipeline are few; this is a safety bound).
MAX_COLLAPSED = 4096


class StageProfiler:
    """Background sampler attributing wall time to span-stack stages."""

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = float(interval)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._self: Dict[str, float] = {}
        self._total: Dict[str, float] = {}
        self._collapsed: Dict[str, int] = {}
        self._samples = 0
        self._attributed_samples = 0
        self._attributed_seconds = 0.0
        self._unattributed_seconds = 0.0

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampling thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StageProfiler":
        """Start the sampling thread (idempotent); returns self."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="elsa-profiler", daemon=True
        )
        self._thread.start()
        gauge("profiler.running").set(1.0)
        return self

    def stop(self) -> None:
        """Stop and join the sampling thread (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        gauge("profiler.running").set(0.0)

    def __enter__(self) -> "StageProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _loop(self) -> None:
        last = perf_counter()
        while not self._stop.wait(self.interval):
            now = perf_counter()
            self._tick(now - last)
            last = now

    # -- sampling --------------------------------------------------------------

    def _tick(self, dt: float) -> None:
        """Account one sample worth ``dt`` wall seconds.

        Factored out of the thread loop so tests can drive attribution
        deterministically.
        """
        live: List[List[str]] = [
            [sp.name for sp in stack]
            for _, stack in thread_stacks()
            if stack
        ]
        with self._lock:
            self._samples += 1
            if not live:
                self._unattributed_seconds += dt
                return
            self._attributed_samples += 1
            self._attributed_seconds += dt
            share = dt / len(live)
            for names in live:
                self._self[names[-1]] = (
                    self._self.get(names[-1], 0.0) + share
                )
                for name in set(names):
                    self._total[name] = self._total.get(name, 0.0) + share
                path = ";".join(names)
                if (
                    path in self._collapsed
                    or len(self._collapsed) < MAX_COLLAPSED
                ):
                    self._collapsed[path] = self._collapsed.get(path, 0) + 1

    # -- views -----------------------------------------------------------------

    def stats(self) -> dict:
        """JSON view for ``/profile``: per-stage self/total seconds."""
        with self._lock:
            attributed = self._attributed_seconds
            unattributed = self._unattributed_seconds
            sampled = attributed + unattributed
            return {
                "running": self.running,
                "interval": self.interval,
                "samples": self._samples,
                "attributed_samples": self._attributed_samples,
                "attributed_seconds": attributed,
                "unattributed_seconds": unattributed,
                "attributed_fraction": (
                    attributed / sampled if sampled > 0 else None
                ),
                "stages": {
                    name: {
                        "self_seconds": self._self.get(name, 0.0),
                        "total_seconds": self._total.get(name, 0.0),
                    }
                    for name in sorted(self._total)
                },
            }

    def top_stages(self, n: int = 10) -> List[dict]:
        """Stages by self time, descending — the dashboard table."""
        stats = self.stats()
        rows = [
            {"stage": name, **vals}
            for name, vals in stats["stages"].items()
        ]
        rows.sort(key=lambda r: (-r["self_seconds"], r["stage"]))
        return rows[:n]

    def collapsed(self) -> str:
        """Collapsed-stack export: one ``outer;inner count`` line per
        path, ready for flamegraph.pl / speedscope."""
        with self._lock:
            return "\n".join(
                f"{path} {count}"
                for path, count in sorted(self._collapsed.items())
            )

    def reset_stats(self) -> None:
        """Zero the accumulated tables (the thread keeps running)."""
        with self._lock:
            self._self.clear()
            self._total.clear()
            self._collapsed.clear()
            self._samples = 0
            self._attributed_samples = 0
            self._attributed_seconds = 0.0
            self._unattributed_seconds = 0.0


_default_profiler: Optional[StageProfiler] = None
_profiler_lock = threading.Lock()


def get_profiler() -> StageProfiler:
    """The process-wide default profiler (created stopped)."""
    global _default_profiler
    with _profiler_lock:
        if _default_profiler is None:
            _default_profiler = StageProfiler()
        return _default_profiler


def set_profiler(profiler: Optional[StageProfiler]) -> None:
    """Replace the default profiler (tests, custom intervals)."""
    global _default_profiler
    with _profiler_lock:
        old, _default_profiler = _default_profiler, profiler
    if old is not None:
        old.stop()


def reset_profiler() -> None:
    """Stop and drop the default profiler."""
    set_profiler(None)
