"""Incident forensics: causal traces, captured bundles, deterministic replay.

When an SLO burns or a shard flaps into quarantine, the evidence lives
in bounded rings (`MetricHistory`, `FlightRecorder`, the supervisor
event log, the dead-letter deque) that keep rolling — by the time an
operator looks, the incident has aged out.  This module freezes that
evidence the moment the trigger fires:

* :class:`TraceContext` — a lightweight causal trace (trace_id /
  parent_id / tenant) minted at ingestion and carried through
  ``IngestionRouter`` → ``Shard`` → ``feed_chunk`` → provenance, so
  spans and :class:`~repro.obs.provenance.PredictionProvenance`
  records across the fleet correlate into one chain per record batch.
  IDs come from a process counter, **not** wall clock or randomness,
  so a replayed run mints the same ids.
* :class:`IncidentManager` — subscribed to SLO ``firing`` transitions
  and supervisor ``quarantine``/``restart`` events; freezes a portable
  on-disk **incident bundle** (versioned JSON/JSONL directory) with
  bounded retention.  Capture is guarded by a circuit breaker and
  never raises into the caller: forensics must not take down the
  shard it is documenting.
* :func:`replay_bundle` — re-feeds a bundle's captured record window
  through a fresh pipeline at the bundle's checkpointed model state
  and diffs the predictions against what was recorded, turning every
  incident into a reproducible regression case.

Bundle layout (``manifest.json`` carries ``bundle_version``)::

    inc-0001-shard_restart/
      manifest.json       # id, kind, trigger, tenant, cursor, window,
                          # lifecycle, config, trace, runbook, artifacts
      history.json        # MetricHistory.state_dict()
      alerts.json         # SLOEngine.alerts()
      provenance.jsonl    # FlightRecorder exemplars
      profile.txt         # collapsed-stack profile
      spans.json          # span tree (active spans included)
      supervisor.jsonl    # supervision event audit
      dead_letter.jsonl   # dead-letter samples
      records.jsonl       # raw record window (the unacked replay buffer)
      predictions.json    # predictions emitted so far + feed cursor
      checkpoint.json     # copy of the shard's last on-disk checkpoint

Directories are written to a dot-prefixed temp name and ``os.replace``d
into place, so a reader never sees a torn bundle.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs.logging import get_logger
from repro.obs.metrics import counter, gauge

__all__ = [
    "BUNDLE_VERSION",
    "DEFAULT_RETENTION",
    "IncidentManager",
    "TraceContext",
    "current_trace",
    "current_trace_id",
    "get_incident_manager",
    "load_bundle",
    "mint_trace",
    "record_from_dict",
    "record_to_dict",
    "replay_bundle",
    "reset_forensics",
    "set_incident_manager",
    "trace_scope",
]

log = get_logger(__name__)

BUNDLE_VERSION = 1
FORENSICS_STATE_VERSION = 1

#: bundles kept on disk before the oldest are deleted
DEFAULT_RETENTION = 8

#: dead-letter samples frozen per bundle (the ring can hold thousands)
MAX_DEAD_LETTER_SAMPLES = 64

MANIFEST = "manifest.json"

#: trigger kinds → the supervisor event kinds that cause a capture
_CAPTURED_EVENT_KINDS = ("quarantine", "restart")


# -- causal traces -----------------------------------------------------------


@dataclass(frozen=True)
class TraceContext:
    """One causal chain: a batch of records moving through the fleet."""

    trace_id: str
    parent_id: Optional[str] = None
    tenant: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "tenant": self.tenant,
        }


_trace_lock = threading.Lock()
_trace_counter = 0
_tls = threading.local()


def mint_trace(
    tenant: Optional[str] = None, parent_id: Optional[str] = None
) -> TraceContext:
    """A fresh context with a deterministic (counter-based) id.

    No wall clock, no randomness: the n-th trace of a run is always
    ``tr-n``, so replays and byte-identity tests stay reproducible.
    """
    global _trace_counter
    with _trace_lock:
        _trace_counter += 1
        n = _trace_counter
    return TraceContext(
        trace_id=f"tr-{n:08d}", parent_id=parent_id, tenant=tenant
    )


@contextmanager
def trace_scope(ctx: TraceContext) -> Iterator[TraceContext]:
    """Make ``ctx`` the current trace for the calling thread."""
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


def current_trace() -> Optional[TraceContext]:
    """The innermost active trace on this thread, if any."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


def current_trace_id() -> Optional[str]:
    """Shorthand for provenance stamping on the prediction hot path."""
    stack = getattr(_tls, "stack", None)
    return stack[-1].trace_id if stack else None


# -- record (de)serialization ------------------------------------------------


def record_to_dict(rec) -> dict:
    """A LogRecord as JSON — *all six* fields, unlike ``format_line``
    (replay needs ``event_type``/``fault_id`` intact)."""
    return {
        "timestamp": float(rec.timestamp),
        "location": rec.location,
        "severity": int(rec.severity),
        "message": rec.message,
        "event_type": rec.event_type,
        "fault_id": rec.fault_id,
    }


def record_from_dict(d: dict):
    """Inverse of :func:`record_to_dict`."""
    from repro.simulation.trace import LogRecord, Severity

    return LogRecord(
        timestamp=float(d["timestamp"]),
        location=str(d["location"]),
        severity=Severity(int(d["severity"])),
        message=str(d["message"]),
        event_type=d.get("event_type"),
        fault_id=d.get("fault_id"),
    )


# -- the incident manager ----------------------------------------------------


class IncidentManager:
    """Freezes incident bundles when alerts fire or shards misbehave.

    Disarmed (no directory) the manager only counts triggers — the
    default, so library users pay nothing.  :meth:`arm` points it at a
    bundle directory; :meth:`bind_fleet` wires the per-shard evidence
    sources (record window, predictions, checkpoint).  Capture is
    wrapped in a circuit breaker: after ``failure_threshold`` failed
    writes (disk full, serialization bugs) further captures are
    skipped until the cooldown passes, and a failure **never**
    propagates into the shard that triggered it.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        retention: int = DEFAULT_RETENTION,
        breaker=None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.retention = int(retention)
        if breaker is None:
            from repro.resilience.breaker import CircuitBreaker

            breaker = CircuitBreaker(
                "forensics", failure_threshold=3, cooldown_seconds=600.0
            )
        self.breaker = breaker
        self._seq = 0
        self._counts = {
            "triggers": 0, "captured": 0, "failed": 0, "skipped": 0,
        }
        self._last: Optional[dict] = None
        self._sources: Dict[str, Callable] = {}
        self._lock = threading.RLock()
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # -- wiring --------------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self.directory is not None

    def arm(self, directory: os.PathLike,
            retention: Optional[int] = None) -> None:
        """Point captures at ``directory`` (created if missing)."""
        with self._lock:
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)
            if retention is not None:
                self.retention = int(retention)

    def bind(self, **sources: Callable) -> None:
        """Install evidence providers (zero-arg or tenant-arg callables).

        Known names: ``history``, ``slo``, ``profiler``,
        ``supervisor_events``, ``dead_letters``, ``stream_time``,
        ``config`` (zero-arg) and ``window``, ``predictions``,
        ``checkpoint``, ``recorder``, ``lifecycle``, ``trace``,
        ``pick_tenant`` (take the resolved tenant / trigger).
        """
        with self._lock:
            self._sources.update(sources)

    def bind_fleet(self, fleet) -> None:
        """Wire every evidence source to a running fleet."""
        from dataclasses import asdict

        def pick(tenant: Optional[str]):
            shard = fleet.shards.get(tenant) if tenant is not None else None
            if shard is not None:
                return shard
            for ev in reversed(fleet.supervisor.events):
                shard = fleet.shards.get(ev.get("tenant"))
                if shard is not None:
                    return shard
            return max(
                fleet.shards.values(),
                key=lambda s: len(s._unacked),
                default=None,
            )

        def window(tenant):
            shard = pick(tenant)
            return list(shard._unacked) if shard is not None else []

        def predictions(tenant):
            shard = pick(tenant)
            if shard is None:
                return None
            pred = shard.run.predictor
            return {
                "tenant": shard.tenant,
                "cursor": pred.n_records_fed,
                "t_start": shard.t_start,
                "t_end": shard.t_end,
                "predictions": [p.to_dict() for p in pred._predictions],
            }

        def checkpoint(tenant):
            shard = pick(tenant)
            if shard is None or shard.checkpoint_path is None:
                return None
            return (
                shard.checkpoint_path
                if shard.checkpoint_path.exists() else None
            )

        def recorder(tenant):
            shard = pick(tenant)
            return (
                shard.run.predictor.flight_recorder
                if shard is not None else None
            )

        def lifecycle(tenant):
            shard = pick(tenant)
            if shard is None:
                return None
            from repro.resilience.checkpoint import DEFAULT_LIFECYCLE

            return dict(
                shard.run._lifecycle_state() or DEFAULT_LIFECYCLE
            )

        def trace(tenant):
            shard = pick(tenant)
            return getattr(shard, "last_trace", None) if shard else None

        self.bind(
            history=lambda: fleet.history,
            slo=lambda: fleet.slo,
            supervisor_events=lambda: list(fleet.supervisor.events),
            dead_letters=lambda: list(fleet.router.dead_letter),
            stream_time=lambda: fleet.stream_time,
            config=lambda: asdict(fleet.policy),
            window=window,
            predictions=predictions,
            checkpoint=checkpoint,
            recorder=recorder,
            lifecycle=lifecycle,
            trace=trace,
            pick_tenant=lambda trigger: (
                shard.tenant
                if (shard := pick(trigger.get("tenant"))) is not None
                else None
            ),
        )

    def unbind(self) -> None:
        """Drop bound sources (fleet close); defaults take over."""
        with self._lock:
            self._sources.clear()

    def _get(self, name: str) -> Optional[Callable]:
        src = self._sources.get(name)
        if src is not None:
            return src
        # defaults: the process-wide obs singletons
        if name == "history":
            from repro.obs.history import get_history

            return get_history
        if name == "slo":
            from repro.obs.slo import get_slo_engine

            return get_slo_engine
        if name == "profiler":
            from repro.obs.profiler import get_profiler

            return get_profiler
        return None

    # -- triggers ------------------------------------------------------------

    def on_slo_transition(self, transition: dict) -> Optional[Path]:
        """SLOEngine subscription: capture on ``firing`` transitions."""
        if transition.get("to") != "firing":
            return None
        return self.capture("slo_firing", dict(transition))

    def on_supervisor_event(self, event: dict) -> Optional[Path]:
        """Supervisor subscription: capture quarantines and restarts."""
        if event.get("kind") not in _CAPTURED_EVENT_KINDS:
            return None
        trigger = dict(event, detail=dict(event.get("detail", {})))
        return self.capture(f"shard_{event['kind']}", trigger)

    # -- capture -------------------------------------------------------------

    def capture(self, kind: str, trigger: dict) -> Optional[Path]:
        """Freeze one bundle; returns its path, or None (and never raises).

        The failure ladder: disarmed → count only; breaker open → skip;
        a write that raises → breaker failure +
        ``forensics.capture_failures_total``, shard unharmed.
        """
        with self._lock:
            self._counts["triggers"] += 1
            counter("forensics.triggers_total").inc()
            if self.directory is None:
                self._last = {
                    "outcome": "disarmed", "kind": kind, "bundle": None,
                }
                return None
            if not self.breaker.allow():
                self._counts["skipped"] += 1
                counter("forensics.captures_skipped_total").inc()
                self._last = {
                    "outcome": "skipped_breaker", "kind": kind,
                    "bundle": None,
                }
                return None
            self._seq += 1
            bundle_id = f"inc-{self._seq:04d}-{kind}"
            try:
                path = self._write_bundle(bundle_id, kind, trigger)
            except Exception as exc:
                self.breaker.record_failure(exc)
                self._counts["failed"] += 1
                counter("forensics.capture_failures_total").inc()
                self._last = {
                    "outcome": "failed", "kind": kind, "bundle": None,
                    "error": f"{type(exc).__name__}: {exc}",
                }
                log.warning(
                    "incident capture failed",
                    extra={"kind": kind, "error": str(exc)},
                )
                return None
            self.breaker.record_success()
            self._counts["captured"] += 1
            counter("forensics.bundles_captured_total").inc()
            self._last = {
                "outcome": "captured", "kind": kind, "bundle": str(path),
            }
            self._enforce_retention()
            log.info(
                "incident bundle captured",
                extra={"kind": kind, "bundle": str(path)},
            )
            return path

    def _call(self, name: str, *args):
        src = self._get(name)
        return src(*args) if src is not None else None

    def _write_bundle(self, bundle_id: str, kind: str,
                      trigger: dict) -> Path:
        final = self.directory / bundle_id
        tmp = self.directory / f".{bundle_id}.tmp"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)

        pick = self._sources.get("pick_tenant")
        tenant = trigger.get("tenant")
        if pick is not None:
            tenant = pick(trigger)
        artifacts: List[str] = []

        def emit(name: str, text: str) -> None:
            (tmp / name).write_text(text)
            artifacts.append(name)

        history = self._call("history")
        if history is not None:
            emit("history.json", json.dumps(history.state_dict()))
        slo = self._call("slo")
        runbook = None
        if slo is not None:
            alerts = slo.alerts()
            emit("alerts.json", json.dumps(alerts))
            if kind == "slo_firing":
                from repro.obs.slo import runbook_url

                slug = next(
                    (s.runbook for s in slo.specs
                     if s.name == trigger.get("slo")), "",
                )
                runbook = runbook_url(slug)
        recorder = self._call("recorder", tenant)
        if recorder is not None:
            with open(tmp / "provenance.jsonl", "w") as fh:
                recorder.dump_jsonl(fh)
            artifacts.append("provenance.jsonl")
        profiler = self._call("profiler")
        if profiler is not None:
            emit("profile.txt", profiler.collapsed() + "\n")
        from repro.obs.tracing import span_tree

        emit("spans.json", json.dumps(span_tree(include_active=True)))
        events = self._call("supervisor_events")
        if events is not None:
            emit("supervisor.jsonl",
                 "".join(json.dumps(e) + "\n" for e in events))
        dead = self._call("dead_letters")
        if dead is not None:
            lines = [
                json.dumps({
                    "reason": reason, "tenant": t,
                    "record": record_to_dict(rec),
                }) + "\n"
                for reason, t, rec in dead[-MAX_DEAD_LETTER_SAMPLES:]
            ]
            emit("dead_letter.jsonl", "".join(lines))
        window = self._call("window", tenant) or []
        emit("records.jsonl",
             "".join(json.dumps(record_to_dict(r)) + "\n" for r in window))
        preds = self._call("predictions", tenant)
        if preds is not None:
            emit("predictions.json", json.dumps(preds))
        ckpt_path = self._call("checkpoint", tenant)
        if ckpt_path is not None:
            emit("checkpoint.json", Path(ckpt_path).read_text())

        manifest = {
            "bundle_version": BUNDLE_VERSION,
            "id": bundle_id,
            "kind": kind,
            "trigger": trigger,
            "tenant": tenant,
            "stream_time": self._call("stream_time"),
            "trace_id": self._call("trace", tenant),
            "lifecycle": self._call("lifecycle", tenant),
            "config": self._call("config"),
            "runbook": runbook,
            "cursor": (preds or {}).get("cursor"),
            "t_start": (preds or {}).get("t_start"),
            "t_end": (preds or {}).get("t_end"),
            "records": len(window),
            "predictions": len((preds or {}).get("predictions", [])),
            "artifacts": sorted(artifacts),
        }
        (tmp / MANIFEST).write_text(json.dumps(manifest, indent=2))
        if final.exists():
            shutil.rmtree(final)
        os.replace(tmp, final)
        return final

    def _enforce_retention(self) -> None:
        dirs = self._bundle_dirs()
        while len(dirs) > self.retention:
            victim = dirs.pop(0)
            shutil.rmtree(victim, ignore_errors=True)
        gauge("forensics.bundles_retained").set(float(len(dirs)))

    def _bundle_dirs(self) -> List[Path]:
        if self.directory is None or not self.directory.exists():
            return []
        return sorted(
            p for p in self.directory.iterdir()
            if p.is_dir() and not p.name.startswith(".")
            and (p / MANIFEST).exists()
        )

    # -- views ---------------------------------------------------------------

    def bundles(self) -> List[dict]:
        """Manifests of every retained bundle, oldest first."""
        out = []
        for p in self._bundle_dirs():
            try:
                m = json.loads((p / MANIFEST).read_text())
            except Exception:
                continue
            m["path"] = str(p)
            out.append(m)
        return out

    def state(self) -> dict:
        """The ``incidents`` section of ``/state`` and ``stats --json``."""
        with self._lock:
            dirs = self._bundle_dirs()
            return {
                "armed": self.armed,
                "directory": (
                    str(self.directory) if self.directory else None
                ),
                "active": len(dirs),
                "total": self._counts["captured"],
                "triggers": self._counts["triggers"],
                "failed": self._counts["failed"],
                "skipped": self._counts["skipped"],
                "last_bundle": (
                    (self._last or {}).get("bundle")
                    or (str(dirs[-1]) if dirs else None)
                ),
                "last_outcome": (self._last or {}).get("outcome"),
            }

    def index(self) -> dict:
        """The ``GET /incidents`` document."""
        doc = self.state()
        doc["incidents"] = self.bundles()
        return doc

    def bundle_view(self, bundle_id: str) -> Optional[dict]:
        """The ``GET /incidents/<id>`` document (manifest + artifact
        sizes); None when the bundle is unknown."""
        if self.directory is None:
            return None
        path = self.directory / bundle_id
        if not (path / MANIFEST).exists() or not path.is_dir():
            return None
        manifest = json.loads((path / MANIFEST).read_text())
        manifest["path"] = str(path)
        manifest["files"] = {
            p.name: p.stat().st_size for p in sorted(path.iterdir())
        }
        return manifest

    # -- persistence ---------------------------------------------------------

    @property
    def dirty(self) -> bool:
        """Whether there is anything worth checkpointing."""
        return self.armed or self._counts["triggers"] > 0

    def state_dict(self) -> dict:
        """JSON state for the checkpoint ``obs.incidents`` block."""
        with self._lock:
            return {
                "version": FORENSICS_STATE_VERSION,
                "seq": self._seq,
                "counts": dict(self._counts),
                "last": dict(self._last) if self._last else None,
                "directory": (
                    str(self.directory) if self.directory else None
                ),
                "retention": self.retention,
            }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (re-arms if it was)."""
        if state.get("version") != FORENSICS_STATE_VERSION:
            raise ValueError(
                f"forensics state version {state.get('version')!r} "
                f"not supported"
            )
        with self._lock:
            self._seq = int(state.get("seq", 0))
            self._counts.update(state.get("counts", {}))
            self._last = (
                dict(state["last"]) if state.get("last") else None
            )
            self.retention = int(state.get("retention", self.retention))
            directory = state.get("directory")
            if directory is not None:
                self.directory = Path(directory)


# -- singleton + subscriptions -----------------------------------------------

_default_manager: Optional[IncidentManager] = None
_mgr_lock = threading.Lock()


def get_incident_manager() -> IncidentManager:
    """The process-wide manager (created disarmed on first use)."""
    global _default_manager
    with _mgr_lock:
        if _default_manager is None:
            _default_manager = IncidentManager()
        return _default_manager


def set_incident_manager(manager: Optional[IncidentManager]) -> None:
    """Replace the default manager (tests, custom retention)."""
    global _default_manager
    with _mgr_lock:
        _default_manager = manager


def notify_slo_transition(transition: dict) -> None:
    """SLOEngine → manager hook (called on each transition)."""
    if transition.get("to") != "firing":
        return
    get_incident_manager().on_slo_transition(transition)


def notify_supervisor_event(event: dict) -> None:
    """ShardSupervisor → manager hook (called on each event)."""
    if event.get("kind") not in _CAPTURED_EVENT_KINDS:
        return
    get_incident_manager().on_supervisor_event(event)


def reset_forensics() -> None:
    """Fresh slate: trace counter back to zero, manager dropped."""
    global _trace_counter
    with _trace_lock:
        _trace_counter = 0
    stack = getattr(_tls, "stack", None)
    if stack:
        del stack[:]
    set_incident_manager(None)


# -- replay ------------------------------------------------------------------


def load_bundle(path: os.PathLike) -> dict:
    """Read a bundle directory into one dict (manifest + artifacts)."""
    path = Path(path)
    manifest = json.loads((path / MANIFEST).read_text())
    out = {"path": str(path), "manifest": manifest}
    for name, key in (
        ("alerts.json", "alerts"),
        ("history.json", "history"),
        ("predictions.json", "predictions"),
        ("spans.json", "spans"),
    ):
        f = path / name
        if f.exists():
            out[key] = json.loads(f.read_text())
    for name, key in (
        ("supervisor.jsonl", "supervisor_events"),
        ("provenance.jsonl", "provenance"),
        ("dead_letter.jsonl", "dead_letters"),
        ("records.jsonl", "records"),
    ):
        f = path / name
        if f.exists():
            out[key] = [
                json.loads(line)
                for line in f.read_text().splitlines() if line.strip()
            ]
    return out


def replay_bundle(path: os.PathLike, elsa,
                  chunk_records: Optional[int] = None) -> dict:
    """Deterministically re-run a bundle's record window and diff it.

    Rebuilds a fresh pipeline from the bundle's checkpoint (or from the
    pristine fitted model when the incident beat the first checkpoint),
    feeds the captured window up to the recorded cursor, and compares
    the replayed predictions byte-for-byte against ``predictions.json``.
    ``elsa`` is deep-copied — the caller's model is never mutated.
    """
    import copy

    from repro.obs.history import MetricHistory
    from repro.obs.slo import SLOEngine
    from repro.resilience.checkpoint import ResumableRun, load_checkpoint

    path = Path(path)
    manifest = json.loads((path / MANIFEST).read_text())
    recorded = json.loads((path / "predictions.json").read_text())
    records = [
        record_from_dict(json.loads(line))
        for line in (path / "records.jsonl").read_text().splitlines()
        if line.strip()
    ]
    elsa = copy.deepcopy(elsa)
    # isolated history/SLO: replay must not pollute the live singletons
    history, engine = MetricHistory(), SLOEngine(specs=[])
    ckpt_file = path / "checkpoint.json"
    if ckpt_file.exists():
        ckpt = load_checkpoint(ckpt_file)
        # the replay is a bystander: the bundle's incident-manager
        # counters must not overwrite the live process manager
        obs_block = dict(ckpt.get("obs") or {})
        obs_block.pop("incidents", None)
        ckpt = dict(ckpt, obs=obs_block)
        run = ResumableRun.resume(
            elsa, ckpt, history=history, slo_engine=engine,
        )
    else:
        run = ResumableRun(
            elsa, manifest["t_start"], manifest["t_end"],
            history=history, slo_engine=engine,
        )
    run.history = None
    run.slo = None

    target = manifest.get("cursor")
    start = run.predictor.n_records_fed
    todo = records if target is None else records[: max(0, target - start)]
    truncated = target is not None and start + len(records) < target
    chunk = (
        chunk_records
        or (manifest.get("config") or {}).get("chunk_records")
        or 512
    )
    ctx = mint_trace(
        tenant=manifest.get("tenant"),
        parent_id=manifest.get("trace_id"),
    )
    with trace_scope(ctx):
        for i in range(0, len(todo), chunk):
            run.feed_chunk(todo[i : i + chunk])

    replayed = [p.to_dict() for p in run.predictor._predictions]
    want = recorded.get("predictions", [])
    a = json.dumps(want, sort_keys=True)
    b = json.dumps(replayed, sort_keys=True)
    divergence = None
    if a != b:
        for i, (x, y) in enumerate(zip(want, replayed)):
            if json.dumps(x, sort_keys=True) != json.dumps(
                y, sort_keys=True
            ):
                divergence = i
                break
        else:
            divergence = min(len(want), len(replayed))
    return {
        "bundle": str(path),
        "kind": manifest.get("kind"),
        "tenant": manifest.get("tenant"),
        "trace_id": ctx.trace_id,
        "parent_trace_id": manifest.get("trace_id"),
        "from_checkpoint": ckpt_file.exists(),
        "records_replayed": len(todo),
        "window_truncated": truncated,
        "cursor_recorded": target,
        "cursor_replayed": run.predictor.n_records_fed,
        "recorded_predictions": len(want),
        "replayed_predictions": len(replayed),
        "identical": a == b,
        "first_divergence": divergence,
    }
