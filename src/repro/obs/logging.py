"""Structured logging for the pipeline.

A thin layer over stdlib :mod:`logging`: every pipeline module gets its
logger via :func:`get_logger` (namespaced under ``repro``), and records
render as ``key=value`` pairs so a grep-able line like::

    ts=2026-08-06T12:00:01 level=warning logger=repro.simulation.workload \
        msg="emitter skipped" emitter=RestartSequenceEmitter reason=...

comes out of every emit.  Extra fields ride on ``extra={...}`` or the
``kv(...)`` helper.  The level comes from (highest priority first) the
CLI ``--log-level`` flag, the ``ELSA_LOG_LEVEL`` environment variable,
or the WARNING default — quiet unless asked, so library users see
nothing new.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Any, Mapping, Optional

__all__ = ["configure_logging", "get_logger", "kv", "ENV_LOG_LEVEL"]

#: Environment knob honoured when no explicit level is configured.
ENV_LOG_LEVEL = "ELSA_LOG_LEVEL"

_ROOT_NAME = "repro"
#: LogRecord fields that are plumbing, not user-supplied structure.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

_configured = False


def _render_value(text: str) -> str:
    """Quote a value when it needs it, escaping embedded quotes/newlines."""
    if not text or any(c in text for c in ' "\n'):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n")
        return f'"{escaped}"'
    return text


class KeyValueFormatter(logging.Formatter):
    """Render records as ``ts=... level=... logger=... msg="..." k=v``."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"ts={self.formatTime(record)}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"msg={_render_value(record.getMessage())}",
        ]
        for key in sorted(record.__dict__):
            if key in _RESERVED or key.startswith("_"):
                continue
            value = record.__dict__[key]
            parts.append(f"{key}={_render_value(str(value))}")
        if record.exc_info:
            parts.append(
                f"exc={_render_value(self.formatException(record.exc_info))}"
            )
        return " ".join(parts)


def _resolve_level(level: Optional[str]) -> int:
    name = (level or os.environ.get(ENV_LOG_LEVEL) or "warning").upper()
    resolved = logging.getLevelName(name)
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level: {level!r}")
    return resolved


def configure_logging(
    level: Optional[str] = None, stream: Any = None, force: bool = False
) -> logging.Logger:
    """Install the key=value handler on the ``repro`` root logger.

    Idempotent: repeat calls only adjust the level unless ``force`` is
    set (tests use ``force`` with a capture stream).  Returns the root
    logger.
    """
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    if force:
        for h in list(root.handlers):
            root.removeHandler(h)
        _configured = False
    if not _configured:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(KeyValueFormatter())
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    root.setLevel(_resolve_level(level))
    return root


def get_logger(name: str) -> logging.Logger:
    """A pipeline logger namespaced under ``repro``.

    Lazily installs the default handler so direct library users get
    well-formed warnings without calling :func:`configure_logging`.
    """
    if not _configured:
        configure_logging()
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def kv(**fields: Any) -> Mapping[str, Any]:
    """Structured fields for a log call::

        log.warning("emitter skipped", extra=kv(emitter=name, reason=e))
    """
    return dict(fields)
