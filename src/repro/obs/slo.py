"""Declarative SLOs with multi-window burn-rate alerting.

The paper's economics (Tables III–IV) only hold while precision, recall
and lead time stay inside the profitable envelope — so the envelope is
written down as *service-level objectives* and evaluated continuously
against the :mod:`repro.obs.history` store, SRE-style:

* every SLO is measured over a **fast** and a **slow** window;
* a breach of the fast window alone arms the alert (``pending`` — it
  may be a blip);
* both windows breaching means the error budget is burning at a
  sustained rate → ``firing``;
* both windows clean again → ``resolved`` (then back to ``ok`` on the
  next clean evaluation, with the transition kept on the audit trail).

A firing alert grabs up to :data:`MAX_EXEMPLARS` recent records from
the attached :class:`~repro.obs.provenance.FlightRecorder`, so
``elsa-repro explain`` can jump straight from the alert to the
predictions that breached it.

Engine state (alert states, transition audit, exemplars) round-trips
through :meth:`SLOEngine.state_dict` / :meth:`SLOEngine.load_state` and
rides the checkpoint's ``obs`` block: a resumed run continues burn-rate
accounting where the killed one stopped.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.obs.history import MetricHistory
from repro.obs.metrics import counter, gauge

__all__ = [
    "SLOEngine",
    "SLOSpec",
    "default_slos",
    "get_slo_engine",
    "reset_slo_engine",
    "runbook_url",
    "set_slo_engine",
]

SLO_STATE_VERSION = 1

#: Provenance records attached to one firing alert.
MAX_EXEMPLARS = 3

#: Transition audit entries kept per SLO.
MAX_TRANSITIONS = 32

#: Alert states, and their ``slo.state`` gauge encoding.
OK, PENDING, FIRING, RESOLVED = "ok", "pending", "firing", "resolved"
_STATE_CODE = {OK: 0.0, PENDING: 1.0, FIRING: 2.0, RESOLVED: 3.0}

#: where the runbook anchors live — ``SLOSpec.runbook`` slugs resolve
#: against this document (see :func:`runbook_url`)
RUNBOOK_DOC = "docs/observability.md"


def runbook_url(slug: str) -> Optional[str]:
    """Resolve a ``SLOSpec.runbook`` slug to its documentation anchor."""
    return f"{RUNBOOK_DOC}#{slug}" if slug else None


@dataclass
class SLOSpec:
    """One declarative objective over a history series.

    ``mode`` picks the measurement and the breach direction:

    * ``gauge_min``    — avg over the window must stay **>= threshold**
      (recall floors);
    * ``gauge_max``    — avg over the window must stay **<= threshold**
      (queue depths);
    * ``delta_max``    — counter increase over the window must stay
      **<= threshold** (drift episodes, quarantined records);
    * ``quantile_max`` — the ``q``-quantile over the window must stay
      **<= threshold** (latency p99s; histograms use bucket deltas).

    Windows are in the history's clock (stream seconds for the
    streaming pipeline).  ``guard_metric``/``guard_min`` gate
    evaluation: the SLO is only judged while the guard's latest sample
    is >= ``guard_min`` (e.g. recall is meaningless before any fault
    landed in the scoring window).
    """

    name: str
    description: str
    metric: str
    mode: str
    threshold: float
    q: float = 0.99
    fast_window: float = 300.0
    slow_window: float = 1800.0
    guard_metric: Optional[str] = None
    guard_min: float = 1.0
    runbook: str = ""

    def __post_init__(self) -> None:
        if self.mode not in (
            "gauge_min", "gauge_max", "delta_max", "quantile_max"
        ):
            raise ValueError(f"unknown SLO mode {self.mode!r}")
        if self.fast_window >= self.slow_window:
            raise ValueError("fast_window must be shorter than slow_window")


def default_slos() -> List[SLOSpec]:
    """The built-in objectives (runbooks in docs/observability.md)."""
    return [
        SLOSpec(
            name="recall_floor",
            description=(
                "windowed recall stays above the paper's profitable "
                "envelope"
            ),
            metric="scoreboard.window_recall",
            mode="gauge_min",
            threshold=0.3,
            fast_window=1800.0,
            slow_window=10800.0,
            guard_metric="scoreboard.window_faults",
            guard_min=1.0,
            runbook="runbook-recall-floor",
        ),
        SLOSpec(
            name="feed_latency_p99",
            description="p99 per-chunk predictor.feed latency under 250ms",
            metric="predictor.feed_seconds",
            mode="quantile_max",
            threshold=0.25,
            q=0.99,
            fast_window=300.0,
            slow_window=1800.0,
            runbook="runbook-feed-latency",
        ),
        SLOSpec(
            name="drift_episodes",
            description="no more than one drift episode per slow window",
            metric="scoreboard.drift_alerts",
            mode="delta_max",
            threshold=1.0,
            fast_window=1800.0,
            slow_window=10800.0,
            runbook="runbook-drift-episodes",
        ),
        SLOSpec(
            name="dead_letter_backlog",
            description="quarantine buffer stays near-empty",
            metric="resilience.dead_letter_size",
            mode="gauge_max",
            threshold=8.0,
            fast_window=300.0,
            slow_window=1800.0,
            runbook="runbook-dead-letter",
        ),
    ]


def _fresh_state() -> dict:
    return {
        "state": OK,
        "since": None,
        "fast": None,
        "slow": None,
        "breaching_fast": False,
        "breaching_slow": False,
        "fired_at": None,
        "resolved_at": None,
        "exemplars": [],
        "transitions": [],
    }


class SLOEngine:
    """Evaluates every spec against a history store, tracks alert state."""

    def __init__(
        self,
        specs: Optional[List[SLOSpec]] = None,
        recorder=None,
    ) -> None:
        self.specs: List[SLOSpec] = (
            list(specs) if specs is not None else default_slos()
        )
        self._state: Dict[str, dict] = {
            spec.name: _fresh_state() for spec in self.specs
        }
        self._recorder = recorder
        self._lock = threading.Lock()

    def attach_recorder(self, recorder) -> None:
        """FlightRecorder supplying exemplars for firing alerts."""
        self._recorder = recorder

    # -- measurement -----------------------------------------------------------

    def _measure(self, spec: SLOSpec, history: MetricHistory,
                 window: float, now: float) -> Optional[float]:
        if spec.mode in ("gauge_min", "gauge_max"):
            return history.avg_over_time(spec.metric, window, now)
        if spec.mode == "delta_max":
            return history.delta(spec.metric, window, now)
        return history.quantile_over_time(spec.metric, spec.q, window, now)

    @staticmethod
    def _breach(spec: SLOSpec, value: Optional[float]) -> bool:
        if value is None:
            return False
        if spec.mode == "gauge_min":
            return value < spec.threshold
        return value > spec.threshold

    def _exemplars(self) -> List[dict]:
        if self._recorder is None:
            return []
        try:
            records = self._recorder.records()
        except Exception:
            return []
        return [r.to_dict() for r in records[-MAX_EXEMPLARS:]]

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, history: MetricHistory, now: float) -> List[dict]:
        """One evaluation pass at time ``now``; returns transitions.

        Each returned entry is ``{"slo", "from", "to", "t"}`` — what
        changed this pass.  Firing transitions annotate the history and
        capture exemplars as a side effect.
        """
        now = float(now)
        changed: List[dict] = []
        with self._lock:
            for spec in self.specs:
                st = self._state.setdefault(spec.name, _fresh_state())
                if spec.guard_metric is not None:
                    guard = history.latest(spec.guard_metric)
                    if guard is None or guard < spec.guard_min:
                        st["fast"] = st["slow"] = None
                        st["breaching_fast"] = st["breaching_slow"] = False
                        continue
                fast = self._measure(spec, history, spec.fast_window, now)
                slow = self._measure(spec, history, spec.slow_window, now)
                bf = self._breach(spec, fast)
                bs = self._breach(spec, slow)
                st.update(
                    fast=fast, slow=slow,
                    breaching_fast=bf, breaching_slow=bs,
                )
                new = old = st["state"]
                if old == OK:
                    if bf:
                        new = PENDING
                elif old == PENDING:
                    if bf and bs:
                        new = FIRING
                    elif not bf:
                        new = OK
                elif old == FIRING:
                    if not bf and not bs:
                        new = RESOLVED
                elif old == RESOLVED:
                    if bf:
                        new = PENDING
                    else:
                        new = OK
                if new != old:
                    st["state"] = new
                    st["since"] = now
                    st["transitions"].append(
                        {"t": now, "from": old, "to": new}
                    )
                    del st["transitions"][:-MAX_TRANSITIONS]
                    changed.append(
                        {"slo": spec.name, "from": old, "to": new, "t": now}
                    )
                    if new == FIRING:
                        st["fired_at"] = now
                        st["exemplars"] = self._exemplars()
                    elif new == RESOLVED:
                        st["resolved_at"] = now
        # metrics + annotations outside the engine lock
        counter("slo.evaluations").inc()
        for spec in self.specs:
            st = self._state.get(spec.name, {})
            gauge("slo.state").labels(slo=spec.name).set(
                _STATE_CODE.get(st.get("state", OK), 0.0)
            )
        for tr in changed:
            if tr["to"] == FIRING:
                counter("slo.alerts_fired").inc()
                counter("slo.alerts_fired").labels(slo=tr["slo"]).inc()
                history.annotate("slo_firing", now, {"slo": tr["slo"]})
                # forensics subscription: a firing alert freezes an
                # incident bundle (no-op while the manager is disarmed);
                # lazy import keeps obs.slo importable standalone
                from repro.obs.forensics import notify_slo_transition

                notify_slo_transition(tr)
            elif tr["to"] == RESOLVED:
                counter("slo.alerts_resolved").inc()
                history.annotate("slo_resolved", now, {"slo": tr["slo"]})
        return changed

    # -- views -----------------------------------------------------------------

    def alerts(self) -> dict:
        """JSON view for ``/alerts``: every SLO plus the firing subset."""
        with self._lock:
            slos = []
            for spec in self.specs:
                st = self._state.get(spec.name, _fresh_state())
                entry = {
                    "name": spec.name,
                    "description": spec.description,
                    "metric": spec.metric,
                    "mode": spec.mode,
                    "threshold": spec.threshold,
                    "fast_window": spec.fast_window,
                    "slow_window": spec.slow_window,
                    "runbook": spec.runbook,
                    "runbook_url": runbook_url(spec.runbook),
                }
                entry.update(
                    {k: (list(v) if isinstance(v, list) else v)
                     for k, v in st.items()}
                )
                slos.append(entry)
        return {
            "slos": slos,
            "firing": [s["name"] for s in slos if s["state"] == FIRING],
        }

    def firing(self) -> List[str]:
        """Names of currently firing SLOs."""
        with self._lock:
            return [
                name for name, st in self._state.items()
                if st["state"] == FIRING
            ]

    # -- persistence -----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable engine state (specs included)."""
        with self._lock:
            return {
                "version": SLO_STATE_VERSION,
                "specs": [asdict(spec) for spec in self.specs],
                "state": {
                    name: {
                        k: (list(v) if isinstance(v, list) else v)
                        for k, v in st.items()
                    }
                    for name, st in sorted(self._state.items())
                },
            }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces specs too)."""
        if state.get("version") != SLO_STATE_VERSION:
            raise ValueError(
                f"slo state version {state.get('version')!r} not supported"
            )
        with self._lock:
            self.specs = [SLOSpec(**s) for s in state.get("specs", [])]
            self._state = {
                name: dict(st, transitions=list(st.get("transitions", [])),
                           exemplars=list(st.get("exemplars", [])))
                for name, st in state.get("state", {}).items()
            }


_default_engine: Optional[SLOEngine] = None
_engine_lock = threading.Lock()


def get_slo_engine() -> SLOEngine:
    """The process-wide default engine (created on first use)."""
    global _default_engine
    with _engine_lock:
        if _default_engine is None:
            _default_engine = SLOEngine()
        return _default_engine


def set_slo_engine(engine: Optional[SLOEngine]) -> None:
    """Replace the default engine (tests, custom spec sets)."""
    global _default_engine
    with _engine_lock:
        _default_engine = engine


def reset_slo_engine() -> None:
    """Drop the default engine; the next ``get_slo_engine`` starts fresh."""
    set_slo_engine(None)
