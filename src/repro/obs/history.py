"""Time-series history: a ring-buffer store over registry snapshots.

The live registry answers "what is the value *now*"; SLO alerting and
the dashboard need "what was it over the last N minutes".  A
:class:`MetricHistory` samples the whole
:class:`~repro.obs.metrics.MetricsRegistry` on a caller-driven cadence
and keeps the last ``capacity`` samples per series in bounded deques,
so memory is fixed no matter how long the run.

Two deliberate design points:

* **The clock is the caller's.**  The streaming pipeline samples on the
  *stream* clock (record timestamps), not wall time — a replayed log
  produces byte-identical history, and kill-and-resume determinism (the
  checkpoint contract) extends to the history itself.
* **Histograms keep their bucket counts**, not a digest, so windowed
  quantiles (``quantile_over_time``) come from bucket-count deltas
  between the window's edges — the same estimate Prometheus's
  ``histogram_quantile(rate(...))`` would give.

Lifecycle swaps, ladder demotions, and SLO transitions land in a
parallel *annotation* ring (:meth:`MetricHistory.annotate`) so a recall
dip can be read next to the event that explains it.

The whole store round-trips through :meth:`state_dict` /
:meth:`load_state` as plain JSON; the checkpoint path persists it so
history survives a kill (``tests/test_obs_history.py`` asserts the
round trip is byte-identical).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, counter, get_registry

__all__ = [
    "MetricHistory",
    "get_history",
    "reset_history",
    "set_history",
]

#: Samples kept per series before the oldest roll off.
DEFAULT_CAPACITY = 720

#: Default sampling cadence, in caller-clock seconds.
DEFAULT_INTERVAL = 60.0

#: Annotation events kept before the oldest roll off.
MAX_EVENTS = 256

HISTORY_STATE_VERSION = 1


def _bucket_quantile(
    bounds: List[float], counts: List[int], q: float
) -> Optional[float]:
    """Interpolated q-quantile from per-bucket (non-cumulative) counts.

    Mirrors :func:`repro.reporting.histogram_quantile` but works on the
    raw bucket-count vector history stores (that module depends on obs,
    so obs cannot import it back).
    """
    total = sum(counts)
    if total <= 0:
        return None
    target = q * total
    running = 0.0
    for i, n in enumerate(counts):
        if n <= 0:
            continue
        if running + n >= target:
            if i >= len(bounds):  # overflow bucket: no upper bound
                return float(bounds[-1]) if bounds else None
            lo = float(bounds[i - 1]) if i > 0 else 0.0
            hi = float(bounds[i])
            frac = (target - running) / n
            return lo + (hi - lo) * frac
        running += n
    return float(bounds[-1]) if bounds else None


class MetricHistory:
    """Bounded per-series sample rings with windowed queries.

    ``capacity`` bounds samples per series; ``interval`` is the minimum
    spacing :meth:`maybe_sample` enforces.  All timestamps are whatever
    clock the caller passes (the streaming pipeline passes stream time).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        interval: float = DEFAULT_INTERVAL,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.capacity = int(capacity)
        self.interval = float(interval)
        self._registry = registry
        self._samples: Dict[str, deque] = {}
        self._kinds: Dict[str, str] = {}
        self._bounds: Dict[str, List[float]] = {}
        self._events: deque = deque(maxlen=MAX_EVENTS)
        self._times: deque = deque(maxlen=self.capacity)
        self.last_time: Optional[float] = None
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------------

    def due(self, now: float) -> bool:
        """Whether a sample at ``now`` respects the cadence."""
        return self.last_time is None or now - self.last_time >= self.interval

    def maybe_sample(self, now: float) -> bool:
        """Sample iff the cadence allows it; returns whether it did."""
        if not self.due(now):
            return False
        self.sample(now)
        return True

    @staticmethod
    def series_name(name: str, labels: Dict[str, str]) -> str:
        """Canonical series key for a labeled child: ``name{k="v",...}``.

        Labeled children of a metric are first-class history series
        under this key (sorted label order, Prometheus-style), so every
        windowed query — ``rate``, ``quantile_over_time``, ... — works
        per label set, e.g. per fleet tenant.
        """
        inner = ",".join(
            f'{k}="{v}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{inner}}}"

    def _record(self, name: str, kind: str, m: dict, now: float) -> None:
        if kind == "histogram":
            payload = [m.get("count", 0), m.get("sum", 0.0),
                       list(m.get("counts", []))]
            self._bounds[name] = [
                float(b) for b in m.get("buckets", [])
            ]
        else:
            payload = m.get("value", 0.0)
        dq = self._samples.get(name)
        if dq is None:
            dq = deque(maxlen=self.capacity)
            self._samples[name] = dq
        self._kinds[name] = kind
        dq.append([now, payload])

    def sample(self, now: float) -> None:
        """Record one snapshot of every registry metric at time ``now``.

        Labeled children ride along as their own series under
        :meth:`series_name` keys; histogram children reuse the parent's
        bucket bounds.
        """
        registry = self._registry or get_registry()
        snap = registry.snapshot()
        now = float(now)
        with self._lock:
            self.last_time = now
            self._times.append(now)
            for name, m in snap.items():
                kind = m.get("kind", "gauge")
                self._record(name, kind, m, now)
                for child in m.get("series") or ():
                    child_name = self.series_name(
                        name, child.get("labels", {})
                    )
                    if kind == "histogram" and "buckets" not in child:
                        child = dict(child, buckets=m.get("buckets", []))
                    self._record(child_name, kind, child, now)
        counter("obs.history_samples").inc()

    def annotate(self, kind: str, t: float, detail: Optional[dict] = None
                 ) -> None:
        """Record one event (model swap, ladder demotion, SLO firing...)."""
        event = {"t": float(t), "kind": str(kind), "detail": detail or {}}
        with self._lock:
            self._events.append(event)
        counter("obs.history_annotations").inc()

    # -- queries ---------------------------------------------------------------

    def names(self) -> List[str]:
        """All series names seen so far, sorted."""
        with self._lock:
            return sorted(self._samples)

    def kind(self, name: str) -> Optional[str]:
        """The metric kind of ``name``, or None if never sampled."""
        return self._kinds.get(name)

    def _window(self, name: str, window: Optional[float],
                now: Optional[float]) -> List[list]:
        with self._lock:
            dq = self._samples.get(name)
            points = list(dq) if dq else []
        if not points:
            return []
        if window is None:
            return points
        end = self.last_time if now is None else float(now)
        if end is None:
            return points
        lo = end - float(window)
        return [p for p in points if lo <= p[0] <= end]

    def series(self, name: str, window: Optional[float] = None,
               now: Optional[float] = None) -> List[Tuple[float, float]]:
        """``(t, value)`` points in the window (histograms: cum. count)."""
        points = self._window(name, window, now)
        if self._kinds.get(name) == "histogram":
            return [(t, float(p[0])) for t, p in points]
        return [(t, float(p)) for t, p in points]

    def latest(self, name: str) -> Optional[float]:
        """Most recent sampled value (histograms: cumulative count)."""
        pts = self.series(name)
        return pts[-1][1] if pts else None

    def delta(self, name: str, window: float,
              now: Optional[float] = None) -> Optional[float]:
        """last - first over the window (needs >= 2 points)."""
        pts = self.series(name, window, now)
        if len(pts) < 2:
            return None
        return pts[-1][1] - pts[0][1]

    def rate(self, name: str, window: float,
             now: Optional[float] = None) -> Optional[float]:
        """Per-second increase over the window (counter semantics).

        A decrease (registry reset between samples) clamps to 0 rather
        than reporting a negative rate.
        """
        pts = self.series(name, window, now)
        if len(pts) < 2:
            return None
        dt = pts[-1][0] - pts[0][0]
        if dt <= 0:
            return None
        return max(0.0, pts[-1][1] - pts[0][1]) / dt

    def avg_over_time(self, name: str, window: float,
                      now: Optional[float] = None) -> Optional[float]:
        pts = self.series(name, window, now)
        if not pts:
            return None
        return sum(v for _, v in pts) / len(pts)

    def min_over_time(self, name: str, window: float,
                      now: Optional[float] = None) -> Optional[float]:
        pts = self.series(name, window, now)
        return min((v for _, v in pts), default=None)

    def max_over_time(self, name: str, window: float,
                      now: Optional[float] = None) -> Optional[float]:
        pts = self.series(name, window, now)
        return max((v for _, v in pts), default=None)

    def quantile_over_time(self, name: str, q: float, window: float,
                           now: Optional[float] = None) -> Optional[float]:
        """q-quantile of the window.

        Histograms: interpolated quantile of the *bucket-count delta*
        between the window's first and last samples — the distribution
        of observations that landed inside the window.  Gauges and
        counters: the quantile of the sampled values themselves.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._kinds.get(name) == "histogram":
            points = self._window(name, window, now)
            if len(points) < 2:
                return None
            first, last = points[0][1], points[-1][1]
            dcounts = [
                max(0, b - a) for a, b in zip(first[2], last[2])
            ]
            return _bucket_quantile(self._bounds.get(name, []), dcounts, q)
        pts = self.series(name, window, now)
        if not pts:
            return None
        values = sorted(v for _, v in pts)
        if len(values) == 1:
            return values[0]
        pos = q * (len(values) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(values) - 1)
        return values[lo] + (values[hi] - values[lo]) * (pos - lo)

    def events(self, window: Optional[float] = None,
               now: Optional[float] = None) -> List[dict]:
        """Annotation events, optionally restricted to the window."""
        with self._lock:
            events = list(self._events)
        if window is None:
            return events
        end = self.last_time if now is None else float(now)
        if end is None:
            return events
        lo = end - float(window)
        return [e for e in events if lo <= e["t"] <= end]

    # -- persistence -----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the whole store."""
        with self._lock:
            return {
                "version": HISTORY_STATE_VERSION,
                "capacity": self.capacity,
                "interval": self.interval,
                "last_time": self.last_time,
                "times": list(self._times),
                "kinds": dict(sorted(self._kinds.items())),
                "bounds": dict(sorted(self._bounds.items())),
                "samples": {
                    name: [list(p) for p in dq]
                    for name, dq in sorted(self._samples.items())
                },
                "events": [dict(e) for e in self._events],
            }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (replaces everything)."""
        if state.get("version") != HISTORY_STATE_VERSION:
            raise ValueError(
                f"history state version {state.get('version')!r} "
                "not supported"
            )
        with self._lock:
            self.capacity = int(state["capacity"])
            self.interval = float(state["interval"])
            self.last_time = state.get("last_time")
            self._times = deque(state.get("times", []),
                                maxlen=self.capacity)
            self._kinds = dict(state.get("kinds", {}))
            self._bounds = {
                k: list(v) for k, v in state.get("bounds", {}).items()
            }
            self._samples = {
                name: deque(points, maxlen=self.capacity)
                for name, points in state.get("samples", {}).items()
            }
            self._events = deque(state.get("events", []),
                                 maxlen=MAX_EVENTS)


_default_history: Optional[MetricHistory] = None
_history_lock = threading.Lock()


def get_history() -> MetricHistory:
    """The process-wide default history (created on first use)."""
    global _default_history
    with _history_lock:
        if _default_history is None:
            _default_history = MetricHistory()
        return _default_history


def set_history(history: Optional[MetricHistory]) -> None:
    """Replace the default history (tests, custom cadences)."""
    global _default_history
    with _history_lock:
        _default_history = history


def reset_history() -> None:
    """Drop the default history; the next ``get_history`` starts fresh."""
    set_history(None)
