"""Pipeline observability: metrics, stage tracing, structured logging.

The paper's Section 6 claims are all *measured* — analysis time per
prediction, window visibility, per-stage costs.  This package gives the
reproduction the same discipline about itself: every pipeline layer
emits domain metrics into a process-local registry
(:mod:`repro.obs.metrics`), wraps its stages in timing spans
(:mod:`repro.obs.tracing`), and logs through a structured key=value
logger (:mod:`repro.obs.logging`).  No external dependencies; overhead
is batch-granular so the hot kernels stay within their benchmark
budgets.

Quick tour::

    from repro import obs

    with obs.span("fit", records=1000) as sp:
        ...
        sp["chains"] = 12
    obs.counter("predictor.predictions_issued").inc(3)

    state = obs.export_state()      # {"metrics": ..., "spans": ...}
    obs.reset()                     # fresh slate (tests, CLI runs)
"""

from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LocalCounters,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.tracing import (
    Span,
    active_roots,
    current_span,
    reset_tracing,
    span,
    span_roots,
    span_tree,
)
from repro.obs.live import (
    TelemetryServer,
    health_report,
    render_prometheus,
)
from repro.obs.history import (
    MetricHistory,
    get_history,
    reset_history,
    set_history,
)
from repro.obs.slo import (
    SLOEngine,
    SLOSpec,
    default_slos,
    get_slo_engine,
    reset_slo_engine,
    set_slo_engine,
)
from repro.obs.profiler import (
    StageProfiler,
    get_profiler,
    reset_profiler,
    set_profiler,
)
from repro.obs.provenance import (
    FlightRecorder,
    LifecycleEvent,
    PredictionProvenance,
)
from repro.obs.forensics import (
    IncidentManager,
    TraceContext,
    current_trace,
    current_trace_id,
    get_incident_manager,
    mint_trace,
    replay_bundle,
    reset_forensics,
    set_incident_manager,
    trace_scope,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "IncidentManager",
    "LifecycleEvent",
    "LocalCounters",
    "MetricHistory",
    "MetricsRegistry",
    "PredictionProvenance",
    "SLOEngine",
    "SLOSpec",
    "Span",
    "StageProfiler",
    "TelemetryServer",
    "TraceContext",
    "active_roots",
    "configure_logging",
    "counter",
    "current_span",
    "current_trace",
    "current_trace_id",
    "default_slos",
    "export_state",
    "gauge",
    "get_history",
    "get_incident_manager",
    "get_logger",
    "get_profiler",
    "get_registry",
    "get_slo_engine",
    "health_report",
    "histogram",
    "mint_trace",
    "register_state_section",
    "render_prometheus",
    "replay_bundle",
    "reset",
    "reset_forensics",
    "reset_history",
    "reset_profiler",
    "reset_slo_engine",
    "reset_tracing",
    "set_history",
    "set_incident_manager",
    "set_profiler",
    "set_slo_engine",
    "span",
    "trace_scope",
    "span_roots",
    "span_tree",
    "unregister_state_section",
]


#: extra ``export_state`` sections: name -> zero-arg provider returning a
#: JSON-serializable value.  Subsystems with structured state beyond
#: metrics/spans (e.g. the model lifecycle) register here so ``/state``
#: carries them without obs knowing their shape.
_state_sections: dict = {}


def register_state_section(name: str, provider) -> None:
    """Expose ``provider()`` under ``name`` in every ``export_state``.

    Re-registering a name replaces the previous provider (a rebuilt
    subsystem simply takes over its section).
    """
    if name in ("metrics", "spans", "incidents"):
        raise ValueError(f"state section name {name!r} is reserved")
    _state_sections[name] = provider


def unregister_state_section(name: str) -> None:
    """Remove a section; unknown names are ignored."""
    _state_sections.pop(name, None)


def export_state() -> dict:
    """Everything observed so far, as one JSON-serializable dict.

    Safe to call concurrently with an active run: metric snapshots take
    the registry and per-metric locks, and spans still open anywhere in
    the process are included marked ``done: false`` with their live
    durations — so a mid-run ``/state`` poll sees the stage currently
    executing, not just finished history.  Registered state sections
    are appended under their own keys; a provider that raises reports
    the error string instead of taking the whole export down.
    """
    state = {
        "metrics": get_registry().snapshot(),
        "spans": span_tree(include_active=True),
    }
    try:
        state["incidents"] = get_incident_manager().state()
    except Exception as exc:  # forensics must not kill /state either
        state["incidents"] = {"error": f"{type(exc).__name__}: {exc}"}
    for name, provider in list(_state_sections.items()):
        try:
            state[name] = provider()
        except Exception as exc:  # provider bugs must not kill /state
            state[name] = {"error": f"{type(exc).__name__}: {exc}"}
    return state


def reset() -> None:
    """Fresh observability slate (tests, CLI runs).

    Clears the registry, the finished-span buffer, registered state
    sections, the metric history, the SLO engine, the profiler (a
    running default profiler is stopped), and the forensics layer
    (trace counter and incident manager).
    """
    get_registry().reset()
    reset_tracing()
    _state_sections.clear()
    reset_history()
    reset_slo_engine()
    reset_profiler()
    reset_forensics()
