"""Pipeline observability: metrics, stage tracing, structured logging.

The paper's Section 6 claims are all *measured* — analysis time per
prediction, window visibility, per-stage costs.  This package gives the
reproduction the same discipline about itself: every pipeline layer
emits domain metrics into a process-local registry
(:mod:`repro.obs.metrics`), wraps its stages in timing spans
(:mod:`repro.obs.tracing`), and logs through a structured key=value
logger (:mod:`repro.obs.logging`).  No external dependencies; overhead
is batch-granular so the hot kernels stay within their benchmark
budgets.

Quick tour::

    from repro import obs

    with obs.span("fit", records=1000) as sp:
        ...
        sp["chains"] = 12
    obs.counter("predictor.predictions_issued").inc(3)

    state = obs.export_state()      # {"metrics": ..., "spans": ...}
    obs.reset()                     # fresh slate (tests, CLI runs)
"""

from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.tracing import (
    Span,
    active_roots,
    current_span,
    reset_tracing,
    span,
    span_roots,
    span_tree,
)
from repro.obs.live import (
    TelemetryServer,
    health_report,
    render_prometheus,
)
from repro.obs.provenance import FlightRecorder, PredictionProvenance

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PredictionProvenance",
    "Span",
    "TelemetryServer",
    "active_roots",
    "configure_logging",
    "counter",
    "current_span",
    "export_state",
    "gauge",
    "get_logger",
    "get_registry",
    "health_report",
    "histogram",
    "render_prometheus",
    "reset",
    "reset_tracing",
    "span",
    "span_roots",
    "span_tree",
]


def export_state() -> dict:
    """Everything observed so far, as one JSON-serializable dict.

    Safe to call concurrently with an active run: metric snapshots take
    the registry and per-metric locks, and spans still open anywhere in
    the process are included marked ``done: false`` with their live
    durations — so a mid-run ``/state`` poll sees the stage currently
    executing, not just finished history.
    """
    return {
        "metrics": get_registry().snapshot(),
        "spans": span_tree(include_active=True),
    }


def reset() -> None:
    """Clear the default registry and the finished-span buffer."""
    get_registry().reset()
    reset_tracing()
