"""Hierarchical stage tracing with a thread-local span stack.

A *span* is one timed pipeline stage.  Entering a span while another is
active nests it, so a full ``fit`` + ``predict`` run yields a tree::

    fit (12.3s, records=86400)
    ├── classify (4.1s, templates=212)
    ├── extract (0.8s, records=86400)
    ├── outliers (1.2s, flagged=310)
    ├── mine (5.9s, chains=41)
    └── locations (0.3s)

Wall time comes from :func:`time.perf_counter`; attributes are free-form
key/value pairs (record counts, outlier counts, chain counts, ...).
Finished *root* spans accumulate in a bounded process-level buffer that
:func:`span_tree` exports as JSON — the CLI's ``--metrics-out`` dump and
the benchmark harness both read it.  The stack is thread-local so
parallel miners trace independently; the finished-root buffer is shared
(lock-guarded).
"""

from __future__ import annotations

import threading
from time import perf_counter, time as wall_time
from typing import Any, Dict, List, Optional

from repro.obs.logging import get_logger
from repro.obs.metrics import counter

log = get_logger(__name__)

__all__ = [
    "Span",
    "active_roots",
    "current_span",
    "reset_tracing",
    "span",
    "span_roots",
    "span_tree",
    "thread_stacks",
]

#: Finished root spans kept before the oldest are dropped.
MAX_ROOT_SPANS = 1024


class Span:
    """One timed stage: name, attributes, children, wall duration.

    ``t_start`` is the wall-clock epoch (``time.time()``) at which the
    span opened; durations still come from the monotonic
    ``perf_counter``.  The epoch lets traces exported from separate
    processes — e.g. a checkpointed run and its resumed continuation —
    be laid on one shared timeline.

    A per-span lock guards the attribute dict and child list so a
    concurrent exporter (``obs.export_state`` from the telemetry
    server thread) can serialize a span that is still being mutated.

    An optional ``deadline_s`` arms a soft watchdog: a span that runs
    past its deadline increments ``watchdog.deadline_exceeded`` and
    logs a warning when it finally finishes, and is flagged
    ``deadline_exceeded: true`` in live exports even *before* it
    returns — so a wedged stage is visible from ``/state`` mid-run.
    """

    __slots__ = (
        "name", "attrs", "children", "t_wall", "t_start", "_t0",
        "_done", "_lock", "deadline_s", "_deadline_fired",
    )

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        deadline_s: Optional[float] = None,
    ):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.children: List["Span"] = []
        self.t_wall: float = 0.0
        self.t_start: float = 0.0
        self._t0: float = 0.0
        self._done = False
        self._lock = threading.Lock()
        self.deadline_s = deadline_s
        self._deadline_fired = False

    def __setitem__(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute: ``sp["records"] = n``."""
        with self._lock:
            self.attrs[key] = value

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]

    def _start(self) -> None:
        self.t_start = wall_time()
        self._t0 = perf_counter()

    def _finish(self) -> None:
        self.t_wall = perf_counter() - self._t0
        self._done = True
        if self.deadline_s is not None and self.t_wall > self.deadline_s:
            self._fire_deadline(self.t_wall)

    def _fire_deadline(self, elapsed: float) -> None:
        """Count/log a deadline overrun exactly once per span."""
        with self._lock:
            if self._deadline_fired:
                return
            self._deadline_fired = True
            self.attrs["deadline_exceeded"] = True
        counter("watchdog.deadline_exceeded").inc()
        log.warning(
            "span exceeded its deadline: %s took %.2fs (deadline %.2fs)",
            self.name, elapsed, self.deadline_s,
        )

    @property
    def done(self) -> bool:
        """Whether the span has finished."""
        return self._done

    @property
    def duration(self) -> float:
        """Wall seconds (live reading while the span is still open)."""
        return self.t_wall if self._done else perf_counter() - self._t0

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (depth-first) named ``name``, or self."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def stage_names(self) -> List[str]:
        """All distinct stage names in this subtree, sorted."""
        names = {self.name}
        for child in self.children:
            names.update(child.stage_names())
        return sorted(names)

    def to_dict(self) -> dict:
        """JSON-serializable subtree.

        Safe to call from another thread while the span is still open:
        attrs/children are copied under the span lock, an in-progress
        span reports its live duration, and ``done`` distinguishes the
        two cases.
        """
        with self._lock:
            attrs = dict(self.attrs)
            children = list(self.children)
            done = self._done
            wall = self.t_wall if done else (
                perf_counter() - self._t0 if self._t0 else 0.0
            )
        if (
            not done
            and self.deadline_s is not None
            and wall > self.deadline_s
        ):
            # A still-open span past its deadline: fire the watchdog now
            # so the overrun is visible while the stage is wedged, not
            # only after it (maybe never) returns.
            self._fire_deadline(wall)
            attrs["deadline_exceeded"] = True
        return {
            "name": self.name,
            "wall_seconds": wall,
            "t_start": self.t_start,
            "done": done,
            "attrs": attrs,
            "children": [c.to_dict() for c in children],
        }

    def render(self, indent: int = 0) -> str:
        """Human-readable subtree (one line per span)."""
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        line = "  " * indent + f"{self.name}  {self.t_wall * 1000:.1f}ms"
        if attrs:
            line += f"  [{attrs}]"
        return "\n".join(
            [line] + [c.render(indent + 1) for c in self.children]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.t_wall:.4f}s, "
            f"{len(self.children)} children)"
        )


#: every thread's live span stack (ident -> the actual list object) —
#: the sampling profiler walks these to attribute wall time to stages.
#: Registered on a thread's first span; pruned lazily by readers.
_thread_stacks: Dict[int, List[Span]] = {}
_stacks_lock = threading.Lock()


class _TraceState(threading.local):
    def __init__(self) -> None:
        self.stack: List[Span] = []
        with _stacks_lock:
            _thread_stacks[threading.get_ident()] = self.stack


_state = _TraceState()
_roots: List[Span] = []
_roots_lock = threading.Lock()
#: root spans currently open, across all threads (id(span) -> span) —
#: the telemetry server exports these as ``done: false`` trees.
_active: Dict[int, Span] = {}


def thread_stacks() -> List[tuple]:
    """``(thread_ident, [outermost..innermost spans])`` per live thread.

    Stacks of threads that have died are pruned on the way out.  Each
    returned stack is a shallow copy taken without the owner's
    cooperation — the owner mutates it lock-free — so a reader may see
    a stack that is one push/pop stale; for a sampling profiler that
    jitter is noise, not error.
    """
    alive = {t.ident for t in threading.enumerate()}
    out = []
    with _stacks_lock:
        for ident in list(_thread_stacks):
            if ident not in alive:
                del _thread_stacks[ident]
                continue
            out.append((ident, list(_thread_stacks[ident])))
    return out


class _SpanContext:
    """Context manager yielded by :func:`span`.

    Reentrant is not supported (one context, one ``with``); nesting is
    achieved by opening new spans inside the body.
    """

    __slots__ = ("_span", "_transient")

    def __init__(self, sp: Span, transient: bool = False) -> None:
        self._span = sp
        self._transient = transient

    def __enter__(self) -> Span:
        stack = _state.stack
        if self._transient:
            # on the stack (profiler-visible) but never in the tree:
            # per-chunk hot-loop spans would otherwise grow a root's
            # child list without bound on long streams
            pass
        elif stack:
            parent = stack[-1]
            with parent._lock:
                parent.children.append(self._span)
        else:
            with _roots_lock:
                _active[id(self._span)] = self._span
        stack.append(self._span)
        self._span._start()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        sp = self._span
        sp._finish()
        if exc_type is not None:
            sp["error"] = f"{exc_type.__name__}: {exc}"
        stack = _state.stack
        # Pop back to this span even if inner spans leaked (defensive).
        while stack and stack.pop() is not sp:
            pass
        if self._transient:
            return
        if not stack:
            with _roots_lock:
                _active.pop(id(sp), None)
                _roots.append(sp)
                if len(_roots) > MAX_ROOT_SPANS:
                    del _roots[: len(_roots) - MAX_ROOT_SPANS]


def span(
    stage: str,
    deadline_s: Optional[float] = None,
    transient: bool = False,
    **attrs: Any,
) -> _SpanContext:
    """Open a timed span for ``stage``::

        with span("mine", trains=len(trains)) as sp:
            chains = ...
            sp["chains"] = len(chains)

    ``deadline_s`` arms the soft watchdog (see :class:`Span`): exceeding
    it bumps ``watchdog.deadline_exceeded`` and logs a warning — the
    stage still runs to completion, the overrun just stops being silent.

    ``transient`` spans join the thread's live stack (so the sampling
    profiler attributes their time) but are never attached to the span
    tree — the right choice for per-chunk hot-loop stages that would
    otherwise grow a long-running root's child list without bound.
    """
    return _SpanContext(
        Span(stage, attrs, deadline_s=deadline_s), transient=transient
    )


def current_span() -> Optional[Span]:
    """The innermost active span on this thread, or ``None``."""
    stack = _state.stack
    return stack[-1] if stack else None


def span_roots() -> List[Span]:
    """Finished root spans, oldest first (copy)."""
    with _roots_lock:
        return list(_roots)


def active_roots() -> List[Span]:
    """Root spans currently open, across all threads (copy)."""
    with _roots_lock:
        return list(_active.values())


def span_tree(include_active: bool = False) -> List[dict]:
    """All finished root spans as JSON-serializable dicts.

    With ``include_active`` the currently open root spans (any thread)
    are appended, marked ``done: false`` and carrying their live
    durations — what a mid-run ``/state`` snapshot should show.
    """
    trees = [sp.to_dict() for sp in span_roots()]
    if include_active:
        trees.extend(sp.to_dict() for sp in active_roots())
    return trees


def reset_tracing() -> None:
    """Drop finished roots and this thread's active stack."""
    with _roots_lock:
        _roots.clear()
        _active.clear()
    _state.stack.clear()
