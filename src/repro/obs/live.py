"""Live telemetry: Prometheus exposition + a zero-dependency HTTP server.

A ``--metrics-out`` dump shows a run post-mortem; a running predictor
deserves to be watched *while it runs* (Park et al.'s extreme-scale
log-analytics systems treat real-time monitoring endpoints as a
first-class subsystem).  This module renders the process-local
:class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
exposition format — the registry's counter/gauge/histogram model maps
1:1 — and serves it from a background ``http.server`` thread:

* ``GET /metrics`` — Prometheus text format (``# TYPE`` headers,
  cumulative ``_bucket{le="..."}`` histogram series, labeled child
  series as ``name{key="value"}`` samples);
* ``GET /health``  — ok/degraded/failing JSON aggregated from the
  resilience gauges (circuit-breaker states, dead-letter depth,
  checkpoint age, drift alerts); HTTP 200 unless failing (503);
* ``GET /state``   — the full :func:`repro.obs.export_state` snapshot
  as JSON, including in-progress spans (``done: false``);
* ``GET /query``   — windowed queries against the
  :mod:`repro.obs.history` store (``?metric=...&window=...``; add
  ``label=key=value`` selectors — or the ``tenant=`` shorthand — to
  query a labeled child series such as a fleet tenant's);
* ``GET /alerts``  — the SLO engine's alert states (pending/firing/
  resolved, burn values, exemplars);
* ``GET /profile`` — the sampling profiler's per-stage tables
  (``?format=collapsed`` for the flamegraph export);
* ``GET /fleet``   — the active :mod:`repro.fleet` supervisor's
  per-shard health (``{"active": false}`` when no fleet is running);
* ``GET /incidents`` — the :mod:`repro.obs.forensics` incident
  manager's capture stats and retained bundle manifests;
  ``/incidents/<id>`` views one bundle (manifest + artifact sizes).

When an *ingest API* is mounted (``ingest_fn``; see
:mod:`repro.fleet.ingest`) the server additionally answers the write
path — ``POST /ingest/<tenant>`` NDJSON batches, ``GET
/predictions/<tenant>``, ``/tenants``, ``POST /seal/<tenant>`` and
``POST /drain`` — with payload caps enforced *before* the body is read
(413) and a per-connection socket timeout (``request_timeout_seconds``)
so a stalled or slowloris client releases its handler thread; timeouts
are counted in ``telemetry.request_timeouts`` and answered 408 when the
body stalls mid-read.

Unknown paths get a JSON 404 listing the available endpoints; clients
hanging up mid-response (``BrokenPipeError``/``ConnectionResetError``)
are counted in ``telemetry.client_disconnects`` instead of spraying
tracebacks on stderr.

Everything is stdlib; the server thread is a daemon, so an exiting CLI
never hangs on it.
"""

from __future__ import annotations

import errno
import json
import math
import re
import sys
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import counter as _counter

__all__ = [
    "INGEST_ENDPOINTS",
    "TelemetryServer",
    "health_report",
    "parse_listen",
    "prom_name",
    "render_prometheus",
]

#: Every route the server answers (also the JSON-404 hint list).
ENDPOINTS = (
    "/", "/metrics", "/health", "/state", "/query", "/alerts", "/profile",
    "/fleet", "/incidents",
)

#: Routes added when an ingest API is mounted (``ingest_fn``); prefix
#: routes — ``<tenant>`` is a path segment, e.g. ``POST /ingest/t03``.
INGEST_ENDPOINTS = (
    "/ingest/<tenant>", "/predictions/<tenant>", "/tenants",
    "/tenants/<tenant>", "/seal/<tenant>", "/drain",
)

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_BREAKER_STATE = re.compile(r"^resilience\.breaker\.(?P<name>.+)\.state$")

#: seconds after which the last checkpoint is considered stale
CHECKPOINT_STALE_SECONDS = 600.0


def prom_name(name: str, kind: str = "gauge") -> str:
    """Registry name → Prometheus series name.

    Dots (our namespace separator) become underscores; counters get the
    conventional ``_total`` suffix.
    """
    out = _NAME_BAD.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    if kind == "counter" and not out.endswith("_total"):
        out += "_total"
    return out


def _fmt(value: float) -> str:
    """Prometheus sample value: integers without the trailing ``.0``.

    Non-finite values use the exposition-format spellings ``NaN``,
    ``+Inf`` and ``-Inf`` (``repr`` would emit ``nan``/``inf``, which
    scrapers reject).
    """
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _label_str(labels: Dict[str, str], extra: str = "") -> str:
    """``{k="v",...}`` label block (labels sorted; ``extra`` appended)."""
    parts = [
        f'{_NAME_BAD.sub("_", str(k))}="{_escape_label(v)}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _histogram_lines(pname: str, m: dict, labels: str = "") -> List[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` lines for one series."""
    lines: List[str] = []
    cum = 0
    counts = m.get("counts", [])
    bounds = m.get("buckets", [])
    prefix = labels[:-1] + "," if labels else "{"
    for bound, n in zip(bounds, counts):
        cum += n
        lines.append(
            f'{pname}_bucket{prefix}le="{bound:g}"}} {_fmt(cum)}'
        )
    if len(counts) > len(bounds):  # overflow bucket
        cum += counts[-1]
    lines.append(f'{pname}_bucket{prefix}le="+Inf"}} {_fmt(cum)}')
    lines.append(f"{pname}_sum{labels} {_fmt(m.get('sum', 0.0))}")
    lines.append(f"{pname}_count{labels} {_fmt(m.get('count', 0))}")
    return lines


def render_prometheus(snapshot: Dict[str, dict]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in text exposition format.

    Histograms are converted from the registry's per-bucket counts to
    the cumulative ``_bucket{le="..."}`` series Prometheus expects,
    closed by ``le="+Inf"``, ``_sum`` and ``_count``.  A metric's
    labeled children (its ``"series"`` entries) render as additional
    ``name{key="value"}`` samples under the same family header.

    Name mangling can collide (``a.b`` and ``a_b`` both map to
    ``a_b``): the duplicate ``# TYPE`` header is suppressed so the
    output stays parseable; both sample lines are kept, which a scraper
    will surface as a duplicate-sample error — making the collision
    visible instead of silently dropping one series.
    """
    lines: List[str] = []
    seen_families: set = set()
    for name, m in sorted(snapshot.items()):
        kind = m.get("kind", "gauge")
        pname = prom_name(name, kind)
        if pname not in seen_families:
            lines.append(f"# TYPE {pname} {kind}")
            seen_families.add(pname)
        if kind in ("counter", "gauge"):
            lines.append(f"{pname} {_fmt(m.get('value', 0.0))}")
            for child in m.get("series", []):
                labels = _label_str(child.get("labels", {}))
                lines.append(
                    f"{pname}{labels} {_fmt(child.get('value', 0.0))}"
                )
        elif kind == "histogram":
            lines.extend(_histogram_lines(pname, m))
            for child in m.get("series", []):
                labels = _label_str(child.get("labels", {}))
                lines.extend(_histogram_lines(pname, child, labels))
    return "\n".join(lines) + ("\n" if lines else "")


def health_report(
    snapshot: Optional[Dict[str, dict]] = None,
    now: Optional[float] = None,
    checkpoint_stale_seconds: float = CHECKPOINT_STALE_SECONDS,
) -> dict:
    """Aggregate the resilience gauges into one ok/degraded/failing verdict.

    Rules (documented in docs/observability.md):

    * any circuit breaker half-open or open → **degraded**; two or more
      open (every guarded component down) → **failing**;
    * dead-letter buffer non-empty, the sanitizer's ``degraded`` flag
      set, a drift alert raised, the degradation ladder off its top
      rung, or the last checkpoint older than
      ``checkpoint_stale_seconds`` → **degraded**.
    """
    if snapshot is None:
        from repro import obs

        snapshot = obs.get_registry().snapshot()
    now = time.time() if now is None else now

    checks: Dict[str, dict] = {}
    reasons: List[str] = []
    open_breakers = 0
    degraded = False

    for name, m in snapshot.items():
        match = _BREAKER_STATE.match(name)
        if not match:
            continue
        state = float(m.get("value", 0.0))
        label = {0.0: "closed", 1.0: "half_open", 2.0: "open"}.get(
            state, "unknown"
        )
        checks[f"breaker.{match.group('name')}"] = {
            "state": label, "ok": state == 0.0,
        }
        if state >= 2.0:
            open_breakers += 1
            reasons.append(f"breaker {match.group('name')} open")
        elif state > 0.0:
            degraded = True
            reasons.append(f"breaker {match.group('name')} half-open")

    depth = float(snapshot.get("resilience.dead_letter_size", {}).get(
        "value", 0.0))
    checks["dead_letter"] = {"depth": depth, "ok": depth == 0}
    if depth > 0:
        degraded = True
        reasons.append(f"dead-letter depth {int(depth)}")

    if float(snapshot.get("resilience.degraded", {}).get("value", 0.0)):
        degraded = True
        checks["ingest"] = {"ok": False}
        reasons.append("ingestion degraded (records dropped/repaired)")

    if float(snapshot.get("scoreboard.drift_alert", {}).get("value", 0.0)):
        degraded = True
        checks["drift"] = {"ok": False}
        reasons.append("model drift alert raised")

    rung = float(snapshot.get("lifecycle.ladder_rung", {}).get("value", 0.0))
    if rung > 0:
        degraded = True
        label = {1.0: "signals_only", 2.0: "rate_baseline"}.get(
            rung, f"rung {rung:g}"
        )
        checks["ladder"] = {"rung": rung, "ok": False}
        reasons.append(f"predictor degraded to {label}")

    ck = snapshot.get("resilience.checkpoint_unix_seconds")
    if ck is not None and float(ck.get("value", 0.0)) > 0:
        age = now - float(ck["value"])
        stale = age > checkpoint_stale_seconds
        checks["checkpoint"] = {"age_seconds": age, "ok": not stale}
        if stale:
            degraded = True
            reasons.append(f"last checkpoint {age:.0f}s old")

    if open_breakers >= 2:
        status = "failing"
    elif open_breakers or degraded:
        status = "degraded"
    else:
        status = "ok"
    return {"status": status, "reasons": reasons, "checks": checks}


def parse_listen(spec: str) -> Tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)``; port 0 asks for an ephemeral one."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"--listen wants HOST:PORT, got {spec!r}")
    return host or "127.0.0.1", int(port)


def _history_query(history, params: Dict[str, List[str]]) -> Tuple[int, dict]:
    """Answer one ``/query`` request against a history store."""
    metrics = params.get("metric")
    if not metrics:
        return 400, {
            "error": "missing required parameter 'metric'",
            "example": "/query?metric=scoreboard.window_recall&window=1800",
            "series": history.names(),
        }
    name = metrics[0]
    try:
        window = float(params.get("window", ["600"])[0])
    except ValueError:
        return 400, {"error": "window must be a number of seconds"}
    labels: Dict[str, str] = {}
    for spec in params.get("label", []):
        key, sep, value = spec.partition("=")
        if not sep or not key:
            return 400, {
                "error": f"label selector must be key=value, got {spec!r}",
                "example": (
                    "/query?metric=fleet.feed_seconds&label=tenant=t42"
                ),
            }
        labels[key] = value
    if params.get("tenant"):  # shorthand for the common fleet selector
        labels["tenant"] = params["tenant"][0]
    if labels:
        base = name
        name = history.series_name(base, labels)
        if history.kind(name) is None:
            return 400, {
                "error": f"no history for labeled series {name!r}",
                "metric": base,
                "labels": labels,
                "series": [
                    s for s in history.names()
                    if s == base or s.startswith(base + "{")
                ],
            }
    kind = history.kind(name)
    if kind is None:
        return 404, {
            "error": f"no history for metric {name!r}",
            "series": history.names(),
        }
    points = history.series(name, window)
    out = {
        "metric": name,
        "labels": labels,
        "kind": kind,
        "window": window,
        "now": history.last_time,
        "points": [[t, v] for t, v in points],
        "latest": history.latest(name),
        "delta": history.delta(name, window),
        "rate": history.rate(name, window),
        "avg": history.avg_over_time(name, window),
        "min": history.min_over_time(name, window),
        "max": history.max_over_time(name, window),
        "events": history.events(window),
    }
    if kind == "histogram":
        out["quantiles"] = {
            q: history.quantile_over_time(name, float(q), window)
            for q in ("0.5", "0.9", "0.99")
        }
    return 200, out


class _Handler(BaseHTTPRequestHandler):
    """Routes the telemetry endpoints against the owning server."""

    server_version = "elsa-telemetry/1"

    @property
    def timeout(self):  # consulted by StreamRequestHandler.setup
        # slowloris guard: a per-connection socket timeout so a client
        # that stalls mid-request (or never sends one) releases its
        # handler thread; None disables (the stdlib default)
        if "_timeout_override" in self.__dict__:
            return self.__dict__["_timeout_override"]
        return getattr(self.server, "request_timeout", None)

    @timeout.setter
    def timeout(self, value) -> None:
        # the stdlib never assigns, but keep the attribute writable
        self.__dict__["_timeout_override"] = value

    def log_error(self, format: str, *args) -> None:  # noqa: A002
        # handle_one_request reports a request-line read timeout here;
        # count it (satellite: slowloris visibility), stay silent
        if "timed out" in format:
            _counter("telemetry.request_timeouts").inc()

    @staticmethod
    def _route_label(path: str) -> str:
        if path in ENDPOINTS:
            return path
        head = "/" + path.lstrip("/").split("/", 1)[0]
        if head in ("/incidents", "/ingest", "/predictions", "/tenants",
                    "/seal", "/drain"):
            return head
        return "other"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path
        _counter("telemetry.http_requests").inc()
        _counter("telemetry.http_requests").labels(
            path=self._route_label(path)
        ).inc()
        try:
            self._route(path, urllib.parse.parse_qs(parsed.query))
        except TimeoutError:
            # the connection stalled mid-response; drop it
            _counter("telemetry.request_timeouts").inc()
            self.close_connection = True
        except (BrokenPipeError, ConnectionResetError):
            # the client hung up mid-response; routine, not an error
            _counter("telemetry.client_disconnects").inc()
        except Exception as exc:  # never kill the serving thread
            _counter("telemetry.http_errors").inc()
            try:
                self._reply(500, f"error: {exc}\n",
                            "text/plain; charset=utf-8")
            except OSError:
                pass

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path
        _counter("telemetry.http_requests").inc()
        _counter("telemetry.http_requests").labels(
            path=self._route_label(path)
        ).inc()
        try:
            self._post(path)
        except TimeoutError:
            # body never arrived within the socket timeout: the
            # slowloris/truncation path — answer 408 and hang up
            _counter("telemetry.request_timeouts").inc()
            self.close_connection = True
            try:
                self._reply(408, json.dumps(
                    {"error": "request body timed out"}) + "\n")
            except OSError:
                pass
        except (BrokenPipeError, ConnectionResetError):
            _counter("telemetry.client_disconnects").inc()
        except Exception as exc:
            _counter("telemetry.http_errors").inc()
            try:
                self._reply(500, f"error: {exc}\n",
                            "text/plain; charset=utf-8")
            except OSError:
                pass

    def _post(self, path: str) -> None:
        srv = self.server
        api = srv.ingest_fn()  # type: ignore[attr-defined]
        if api is None:
            self._reply(405, json.dumps({
                "error": "no ingest API mounted on this server",
                "endpoints": list(ENDPOINTS),
            }, indent=1) + "\n")
            return
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            self._reply(411, json.dumps(
                {"error": "Content-Length required"}) + "\n")
            return
        try:
            length = int(raw_length)
        except ValueError:
            self._reply(400, json.dumps(
                {"error": f"bad Content-Length {raw_length!r}"}) + "\n")
            return
        max_bytes = int(getattr(api, "max_body_bytes", 8 << 20))
        if length > max_bytes:
            # refuse before reading: the payload cap must not cost a
            # max-size read to enforce
            self.close_connection = True
            self._reply(413, json.dumps({
                "error": "payload too large",
                "max_bytes": max_bytes,
            }) + "\n")
            return
        body = self.rfile.read(length) if length > 0 else b""
        if len(body) < length:
            # client hung up early; the declared length never arrived
            self._reply(400, json.dumps({
                "error": "truncated body",
                "declared": length,
                "received": len(body),
            }) + "\n")
            return
        headers = {k.lower(): v for k, v in self.headers.items()}
        result = api.handle_request("POST", path, headers, body)
        if result is None:
            self._not_found(path, api)
            return
        code, payload, extra = result
        self._reply(code, json.dumps(payload, default=str, indent=1) + "\n",
                    extra_headers=extra)

    def _not_found(self, path: str, api=None) -> None:
        endpoints = list(ENDPOINTS)
        if api is not None:
            endpoints += list(INGEST_ENDPOINTS)
        self._reply(404, json.dumps({
            "error": "not found",
            "path": path,
            "endpoints": endpoints,
        }, indent=1) + "\n")

    def _route(self, path: str, params: Dict[str, List[str]]) -> None:
        srv = self.server
        if path == "/metrics":
            state = srv.state_fn()  # type: ignore[attr-defined]
            body = render_prometheus(state.get("metrics", {}))
            self._reply(
                200, body, "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/health":
            state = srv.state_fn()  # type: ignore[attr-defined]
            report = health_report(state.get("metrics", {}))
            code = 503 if report["status"] == "failing" else 200
            self._reply(code, json.dumps(report, indent=1) + "\n")
        elif path == "/state":
            state = srv.state_fn()  # type: ignore[attr-defined]
            self._reply(
                200, json.dumps(state, default=str, indent=1) + "\n"
            )
        elif path == "/query":
            history = srv.history_fn()  # type: ignore[attr-defined]
            code, out = _history_query(history, params)
            self._reply(code, json.dumps(out, indent=1) + "\n")
        elif path == "/alerts":
            engine = srv.slo_fn()  # type: ignore[attr-defined]
            self._reply(200, json.dumps(engine.alerts(), indent=1) + "\n")
        elif path == "/fleet":
            fleet = srv.fleet_fn()  # type: ignore[attr-defined]
            if fleet is None:
                self._reply(200, json.dumps(
                    {"active": False, "shards": {}}, indent=1,
                ) + "\n")
            else:
                body = fleet() if callable(fleet) else fleet
                self._reply(
                    200, json.dumps(body, default=str, indent=1) + "\n"
                )
        elif path == "/incidents" or path.startswith("/incidents/"):
            manager = srv.incidents_fn()  # type: ignore[attr-defined]
            if path == "/incidents":
                self._reply(200, json.dumps(
                    manager.index(), default=str, indent=1,
                ) + "\n")
            else:
                bundle_id = path[len("/incidents/"):].strip("/")
                view = manager.bundle_view(bundle_id)
                if view is None:
                    self._reply(404, json.dumps({
                        "error": f"unknown incident bundle {bundle_id!r}",
                        "bundles": [
                            b.get("id")
                            for b in manager.index().get("incidents", [])
                        ],
                    }, indent=1) + "\n")
                else:
                    self._reply(200, json.dumps(
                        view, default=str, indent=1,
                    ) + "\n")
        elif path == "/profile":
            profiler = srv.profiler_fn()  # type: ignore[attr-defined]
            if params.get("format", [""])[0] == "collapsed":
                self._reply(200, profiler.collapsed() + "\n",
                            "text/plain; charset=utf-8")
            else:
                self._reply(
                    200, json.dumps(profiler.stats(), indent=1) + "\n"
                )
        elif path == "/":
            self._reply(
                200,
                "elsa-repro live telemetry: "
                + " ".join(e for e in ENDPOINTS if e != "/")
                + "\n",
                "text/plain; charset=utf-8",
            )
        else:
            api = srv.ingest_fn()  # type: ignore[attr-defined]
            if api is not None:
                result = api.handle_request("GET", path, {}, b"")
                if result is not None:
                    code, payload, extra = result
                    self._reply(
                        code,
                        json.dumps(payload, default=str, indent=1) + "\n",
                        extra_headers=extra,
                    )
                    return
            self._not_found(path, api)

    def _reply(self, code: int, body: str,
               content_type: str = "application/json",
               extra_headers: Optional[Dict[str, str]] = None) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, str(value))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:
        pass  # request logging would drown the structured log stream


class _QuietServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that treats client hangups as routine.

    ``handle_error`` catches exceptions raised outside the handler's
    own try (e.g. during response flush after ``do_GET`` returned);
    the stock implementation prints a traceback to stderr for every
    impatient ``curl`` — here disconnects are counted instead.
    """

    daemon_threads = True

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            _counter("telemetry.client_disconnects").inc()
            return
        super().handle_error(request, client_address)


class TelemetryServer:
    """Background thread serving the live telemetry endpoints.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks an ephemeral port (read ``.port``
        after :meth:`start`).
    state_fn:
        Zero-argument callable returning an ``export_state``-shaped dict
        (``{"metrics": ..., "spans": ...}``).  Defaults to the live
        :func:`repro.obs.export_state`, so a running pipeline is
        observable with no extra wiring; ``elsa-repro monitor`` passes a
        loader over a ``--metrics-out`` file instead.

    Usage::

        with TelemetryServer(port=0) as srv:
            print(srv.url)      # http://127.0.0.1:54321
            ...                 # run the pipeline
    """

    #: bind-retry schedule for a fixed port: attempts and initial delay
    BIND_RETRIES = 5
    BIND_BACKOFF_SECONDS = 0.05

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        state_fn: Optional[Callable[[], dict]] = None,
        history_fn: Optional[Callable[[], object]] = None,
        slo_fn: Optional[Callable[[], object]] = None,
        profiler_fn: Optional[Callable[[], object]] = None,
        fleet_fn: Optional[Callable[[], object]] = None,
        incidents_fn: Optional[Callable[[], object]] = None,
        bind_retries: Optional[int] = None,
        bind_backoff_seconds: Optional[float] = None,
        ingest_fn: Optional[Callable[[], object]] = None,
        request_timeout_seconds: Optional[float] = 30.0,
    ) -> None:
        self.host = host
        self.requested_port = int(port)
        self._state_fn = state_fn or self._live_state
        self._history_fn = history_fn or self._live_history
        self._slo_fn = slo_fn or self._live_slo
        self._profiler_fn = profiler_fn or self._live_profiler
        self._fleet_fn = fleet_fn or self._live_fleet
        self._incidents_fn = incidents_fn or self._live_incidents
        self._ingest_fn = ingest_fn or (lambda: None)
        self.request_timeout_seconds = (
            None if request_timeout_seconds is None
            else float(request_timeout_seconds)
        )
        self.bind_retries = (
            self.BIND_RETRIES if bind_retries is None else int(bind_retries)
        )
        self.bind_backoff_seconds = (
            self.BIND_BACKOFF_SECONDS
            if bind_backoff_seconds is None else float(bind_backoff_seconds)
        )
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @staticmethod
    def _live_state() -> dict:
        from repro import obs  # lazy: obs/__init__ imports this module

        return obs.export_state()

    @staticmethod
    def _live_history():
        from repro.obs.history import get_history

        return get_history()

    @staticmethod
    def _live_slo():
        from repro.obs.slo import get_slo_engine

        return get_slo_engine()

    @staticmethod
    def _live_profiler():
        from repro.obs.profiler import get_profiler

        return get_profiler()

    @staticmethod
    def _live_fleet():
        from repro.fleet import get_active_fleet  # lazy: avoid a cycle

        fleet = get_active_fleet()
        return fleet.state() if fleet is not None else None

    @staticmethod
    def _live_incidents():
        from repro.obs.forensics import get_incident_manager

        return get_incident_manager()

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def _bind(self) -> ThreadingHTTPServer:
        """Bind, retrying ``EADDRINUSE`` with exponential backoff.

        Port 0 never collides (the kernel hands out a free ephemeral
        port), so the retry loop only engages for fixed ports — the
        race where a parallel test or a restarting process still holds
        the address in TIME_WAIT.  After the retry budget the last
        ``OSError`` propagates.
        """
        delay = self.bind_backoff_seconds
        attempts = max(1, self.bind_retries)
        for attempt in range(attempts):
            try:
                return _QuietServer(
                    (self.host, self.requested_port), _Handler
                )
            except OSError as exc:
                in_use = exc.errno == errno.EADDRINUSE
                last = attempt == attempts - 1
                if not in_use or last or self.requested_port == 0:
                    raise
                _counter("telemetry.bind_retries").inc()
                time.sleep(delay)
                delay *= 2.0
        raise AssertionError("unreachable")  # pragma: no cover

    def start(self) -> "TelemetryServer":
        """Bind and start serving from a daemon thread; returns self."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        self._httpd = self._bind()
        self._httpd.daemon_threads = True
        self._httpd.state_fn = self._state_fn  # type: ignore[attr-defined]
        self._httpd.history_fn = self._history_fn  # type: ignore[attr-defined]
        self._httpd.slo_fn = self._slo_fn  # type: ignore[attr-defined]
        self._httpd.profiler_fn = (  # type: ignore[attr-defined]
            self._profiler_fn
        )
        self._httpd.fleet_fn = self._fleet_fn  # type: ignore[attr-defined]
        self._httpd.incidents_fn = (  # type: ignore[attr-defined]
            self._incidents_fn
        )
        self._httpd.ingest_fn = self._ingest_fn  # type: ignore[attr-defined]
        self._httpd.request_timeout = (  # type: ignore[attr-defined]
            self.request_timeout_seconds
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="elsa-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
