"""Process-local metrics registry: counters, gauges, histograms.

Deliberately tiny and dependency-free — the shape follows the
Prometheus client model (monotone counters, set-anywhere gauges,
fixed-bucket cumulative histograms) but everything lives in-process and
exports as plain JSON via :meth:`MetricsRegistry.snapshot`.

Metrics are cheap enough for per-batch use on the hot path: one lock
acquisition per update.  Callers in per-record loops should aggregate
locally and update once per batch (see ``OnlineHELO.observe_many``).

Dimensional metrics: every metric supports ``labels(**kv)``, returning a
child metric of the same kind scoped to that label set (Prometheus
child-metric model).  The unlabeled parent keeps its own independent
series — existing dashboards and the JSON snapshot shape are untouched;
labeled children appear under an additional ``"series"`` key.  Label
cardinality is bounded per metric (:data:`MAX_LABEL_SETS` by default,
raisable via :func:`set_max_label_sets` / :func:`ensure_label_capacity`):
once the cap is hit, new label sets collapse into one
``{overflow="true"}`` child, ``obs.labels_overflowed`` /
``obs.labels_overflow_total`` count the spill, and one warning per
metric is logged — so a label-by-node-id bug cannot eat the process,
and a 100-tenant fleet can raise the cap deliberately.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LocalCounters",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "MAX_LABEL_SETS",
    "TIME_BUCKETS",
    "counter",
    "ensure_label_capacity",
    "gauge",
    "get_registry",
    "histogram",
    "max_label_sets",
    "set_max_label_sets",
]

#: Default distinct label sets allowed per metric before new ones
#: collapse into the ``{overflow="true"}`` child.  The *effective* cap
#: is process-configurable: :func:`set_max_label_sets` raises it (a
#: 100-tenant fleet needs >100 per-tenant series) and
#: :func:`ensure_label_capacity` bumps it only upward.
MAX_LABEL_SETS = 64

_max_label_sets = MAX_LABEL_SETS

#: metric names already warned about overflowing (one log line per
#: metric per run, not one per spilled label set)
_overflow_warned: set = set()

#: The label set every over-cap request collapses into.
_OVERFLOW_KEY: Tuple[Tuple[str, str], ...] = (("overflow", "true"),)


def max_label_sets() -> int:
    """The effective per-metric label-cardinality cap."""
    return _max_label_sets


def set_max_label_sets(limit: int) -> int:
    """Set the cap; returns the previous value.

    Existing overflow children stay collapsed — the cap only governs
    *new* label sets.  ``MetricsRegistry.reset`` restores the default.
    """
    global _max_label_sets
    if int(limit) < 1:
        raise ValueError("label-set cap must be >= 1")
    previous, _max_label_sets = _max_label_sets, int(limit)
    return previous


def ensure_label_capacity(needed: int) -> None:
    """Raise the cap to at least ``needed`` (never lowers it)."""
    global _max_label_sets
    if int(needed) > _max_label_sets:
        _max_label_sets = int(needed)


def _label_key(kv: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Canonical (sorted, stringified) key for one label set."""
    if not kv:
        raise ValueError("labels() requires at least one label")
    return tuple(sorted((str(k), str(v)) for k, v in kv.items()))


class _Labeled:
    """Shared ``labels(**kv)`` child-metric machinery.

    Children live in a dict keyed by the canonical label tuple, guarded
    by the parent's lock.  Children are leaf metrics: asking a child for
    further labels raises (flat label sets only, like Prometheus).
    """

    def _init_labels(self) -> None:
        self._children: Optional[Dict[Tuple[Tuple[str, str], ...],
                                      object]] = None
        self._labelset: Optional[Dict[str, str]] = None

    def _make_child(self):  # pragma: no cover - overridden per kind
        raise NotImplementedError

    def labels(self, **kv: object):
        """The child metric for this label set (created on first use)."""
        if self._labelset is not None:
            raise ValueError(
                f"metric {self.name!r} is already a labeled child; "
                "nested label sets are not supported"
            )
        key = _label_key(kv)
        overflowed = False
        with self._lock:
            if self._children is None:
                self._children = {}
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= _max_label_sets:
                    key = _OVERFLOW_KEY
                    overflowed = True
                    child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    child._labelset = dict(key)
                    self._children[key] = child
        if overflowed:
            # outside self._lock: the registry lock nests metric locks
            # (snapshot), so a metric lock must never wait on it
            _default_registry.counter("obs.labels_overflowed").inc()
            _default_registry.counter("obs.labels_overflow_total").inc()
            if self.name not in _overflow_warned:
                _overflow_warned.add(self.name)
                from repro.obs.logging import get_logger

                get_logger(__name__).warning(
                    "label cardinality cap hit; new label sets collapse "
                    "into the overflow child",
                    extra={
                        "metric": self.name, "cap": _max_label_sets,
                        "hint": "raise it with "
                        "obs.metrics.set_max_label_sets()",
                    },
                )
        return child

    def _series(self) -> Optional[List[dict]]:
        """``"series"`` entries for :meth:`to_dict` (None when unlabeled)."""
        with self._lock:
            children = (
                sorted(self._children.items()) if self._children else None
            )
        if not children:
            return None
        out = []
        for key, child in children:
            entry = {"labels": dict(key)}
            entry.update(
                (k, v) for k, v in child.to_dict().items() if k != "kind"
            )
            out.append(entry)
        return out

    def _reset_children(self) -> None:
        # drop (not just zero) children so stale label sets cannot
        # accumulate across runs
        self._children = None

#: Generic magnitude buckets (counts, sizes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

#: Latency buckets in seconds, spanning the paper's analysis-time range
#: (milliseconds at idle through the 30 s signal-only worst case).
TIME_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter(_Labeled):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()
        self._init_labels()

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._reset_children()

    def to_dict(self) -> dict:
        with self._lock:
            out = {"kind": self.kind, "value": self._value}
        series = self._series()
        if series:
            out["series"] = series
        return out


class Gauge(_Labeled):
    """Point-in-time value; goes anywhere."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()
        self._init_labels()

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._reset_children()

    def to_dict(self) -> dict:
        with self._lock:
            out = {"kind": self.kind, "value": self._value}
        series = self._series()
        if series:
            out["series"] = series
        return out


class Histogram(_Labeled):
    """Fixed-bucket cumulative histogram (Prometheus-style).

    ``buckets`` are upper bounds; an implicit +inf bucket catches the
    rest.  ``counts[i]`` is the number of observations ``<= buckets[i]``
    (cumulative), so percentile estimates fall out of one scan.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        if not buckets:
            raise ValueError("at least one bucket bound required")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +inf
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()
        self._init_labels()

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.bounds, self.help)

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch with one lock acquisition."""
        if len(values) == 0:
            return
        incs = [0] * len(self._counts)
        total = 0.0
        lo = hi = None
        for v in values:
            v = float(v)
            incs[bisect_left(self.bounds, v)] += 1
            total += v
            if lo is None or v < lo:
                lo = v
            if hi is None or v > hi:
                hi = v
        with self._lock:
            for i, n in enumerate(incs):
                self._counts[i] += n
            self._sum += total
            self._count += len(values)
            if self._min is None or lo < self._min:
                self._min = lo
            if self._max is None or hi > self._max:
                self._max = hi

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile from the bucket counts.

        Returns the upper bound of the bucket holding the q-th
        observation (the max for the +inf bucket) — coarse but
        monotone, which is all a fixed-bucket histogram can promise.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._count:
            return 0.0
        target = q * self._count
        running = 0
        for i, n in enumerate(self._counts):
            running += n
            if running >= target:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self._max if self._max is not None else 0.0
        return self._max if self._max is not None else 0.0

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0
            self._min = None
            self._max = None
            self._reset_children()

    def to_dict(self) -> dict:
        with self._lock:
            out = {
                "kind": self.kind,
                "buckets": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "min": self._min,
                "max": self._max,
            }
        series = self._series()
        if series:
            out["series"] = series
        return out


class LocalCounters:
    """Lock-free local accumulator for per-record counter increments.

    ``Counter.inc`` takes the metric's lock on every call; in a
    per-record loop that serializes the hot path on lock traffic.  A
    ``LocalCounters`` buffers increments in a plain dict (no locks, no
    registry lookups) and :meth:`flush` applies each name's total with
    one ``inc`` per *distinct* counter.

    Tradeoff: between flushes, the registry under-reports the buffered
    amounts — snapshots taken mid-batch lag by at most one batch.  Flush
    at batch boundaries (and in ``finally`` blocks around long loops) to
    bound the staleness.  Not thread-safe; use one instance per thread.
    """

    def __init__(self, registry: Optional["MetricsRegistry"] = None) -> None:
        self._registry = registry
        self._pending: Dict[
            Tuple[str, Optional[Tuple[Tuple[str, str], ...]]], float
        ] = {}

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Buffer ``amount`` for counter ``name`` (must be >= 0).

        Keyword arguments address the matching labeled child, buffered
        separately from the unlabeled parent series.
        """
        if amount < 0:
            raise ValueError("counters only go up")
        key = (name, _label_key(labels) if labels else None)
        self._pending[key] = self._pending.get(key, 0.0) + amount

    def flush(self) -> None:
        """Apply every buffered total to the registry and clear."""
        if not self._pending:
            return
        registry = self._registry or _default_registry
        pending, self._pending = self._pending, {}
        for (name, lkey), amount in pending.items():
            if amount:
                target = registry.counter(name)
                if lkey is not None:
                    target = target.labels(**dict(lkey))
                target.inc(amount)

    def __enter__(self) -> "LocalCounters":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.flush()


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Re-requesting a name returns the existing metric; requesting it as a
    different kind raises — names are the contract between emitters and
    consumers (see docs/observability.md for the catalog).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(
            name, lambda: Counter(name, help), "counter"
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create a histogram (buckets fixed at first creation)."""
        return self._get_or_create(
            name, lambda: Histogram(name, buckets, help), "histogram"
        )

    def get(self, name: str):
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, dict]:
        """JSON-serializable dump of every metric."""
        with self._lock:
            return {
                name: metric.to_dict()
                for name, metric in sorted(self._metrics.items())
            }

    def reset(self) -> None:
        """Zero every metric (registrations survive); the label-set cap
        returns to its default and overflow warnings re-arm."""
        global _max_label_sets
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()
        _max_label_sets = MAX_LABEL_SETS
        _overflow_warned.clear()

    def clear(self) -> None:
        """Drop every registration."""
        global _max_label_sets
        with self._lock:
            self._metrics.clear()
        _max_label_sets = MAX_LABEL_SETS
        _overflow_warned.clear()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def counter(name: str, help: str = "") -> Counter:
    """Counter on the default registry."""
    return _default_registry.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Gauge on the default registry."""
    return _default_registry.gauge(name, help)


def histogram(
    name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, help: str = ""
) -> Histogram:
    """Histogram on the default registry."""
    return _default_registry.histogram(name, buckets, help)
