"""Prediction provenance: who fired, why, and with what evidence.

A prediction without an audit trail is an alarm nobody can argue with.
Every prediction the online engines emit gets a
:class:`PredictionProvenance` record — the triggering chain with its
per-signal delays θ, the anchor sample and count that tripped the
detector, the detector's own parameters, the outlier-train window that
shaped the prediction interval, the attached locations, and the
wall-clock lead time — kept in a bounded :class:`FlightRecorder` ring
buffer (crash-box semantics: the last N predictions survive, the
ancient ones age out).

The records are deliberately plain data: this module imports nothing
from :mod:`repro.prediction`, so the ``obs`` package stays importable
from every layer.  ``elsa-repro predict --provenance-out`` dumps the
buffer as JSON-lines; ``elsa-repro explain`` renders it for humans.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, IO, List, Optional, Sequence, Tuple

__all__ = [
    "FlightRecorder",
    "LifecycleEvent",
    "PredictionProvenance",
    "load_jsonl",
    "render_record",
]

#: predictions kept in a flight recorder before the oldest age out
DEFAULT_CAPACITY = 512


@dataclass(frozen=True)
class LifecycleEvent:
    """One model-lifecycle transition, in the same audit-trail spirit.

    ``kind`` is the transition ("register", "swap", "rollback",
    "retrain_started", "trigger", "ladder", ...); ``stream_time`` is the
    simulated stream clock at which it happened and ``detail`` carries
    the transition-specific payload (versions, scores, reasons).  Kept
    in the same bounded :class:`FlightRecorder` rings as prediction
    provenance — the recorder only requires ``to_dict``.
    """

    kind: str
    stream_time: float
    detail: Dict[str, object]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "stream_time": float(self.stream_time),
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LifecycleEvent":
        return cls(
            kind=str(d["kind"]),
            stream_time=float(d["stream_time"]),
            detail=dict(d.get("detail", {})),
        )


@dataclass(frozen=True)
class PredictionProvenance:
    """The full audit record behind one emitted prediction.

    ``chain`` is the triggering correlation chain as ``(event_type,
    delay)`` pairs — the delays are the per-signal θ offsets (in
    samples) the miner learned.  ``window`` describes the outlier-train
    window that shaped the prediction interval: the adaptive per-chain
    quantiles when known, the fixed chain span otherwise.  ``trace_id``
    ties the record to the causal trace of the batch that produced it
    (see :mod:`repro.obs.forensics`); None outside a trace scope.
    """

    source: str
    chain: Tuple[Tuple[int, int], ...]
    anchor_event: int
    fatal_event: int
    anchor_sample: int
    anchor_value: float
    detector: Dict[str, float]
    window: Dict[str, float]
    anchor_location: str
    locations: Tuple[str, ...]
    trigger_time: float
    emitted_at: float
    predicted_time: float
    trace_id: Optional[str] = None

    @property
    def analysis_time(self) -> float:
        """Seconds the analysis consumed before the alarm was visible."""
        return self.emitted_at - self.trigger_time

    @property
    def lead_time(self) -> float:
        """Wall-clock seconds of warning the operator actually gets."""
        return self.predicted_time - self.emitted_at

    def to_dict(self) -> dict:
        """JSON-ready form (one line of the ``--provenance-out`` dump)."""
        return {
            "source": self.source,
            "chain": [[int(t), int(d)] for t, d in self.chain],
            "anchor_event": int(self.anchor_event),
            "fatal_event": int(self.fatal_event),
            "anchor_sample": int(self.anchor_sample),
            "anchor_value": float(self.anchor_value),
            "detector": dict(self.detector),
            "window": dict(self.window),
            "anchor_location": self.anchor_location,
            "locations": list(self.locations),
            "trigger_time": float(self.trigger_time),
            "emitted_at": float(self.emitted_at),
            "predicted_time": float(self.predicted_time),
            "analysis_time": float(self.analysis_time),
            "lead_time": float(self.lead_time),
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PredictionProvenance":
        """Inverse of :meth:`to_dict` (derived fields recomputed)."""
        return cls(
            source=str(d["source"]),
            chain=tuple((int(t), int(dl)) for t, dl in d["chain"]),
            anchor_event=int(d["anchor_event"]),
            fatal_event=int(d["fatal_event"]),
            anchor_sample=int(d["anchor_sample"]),
            anchor_value=float(d["anchor_value"]),
            detector=dict(d["detector"]),
            window=dict(d["window"]),
            anchor_location=str(d["anchor_location"]),
            locations=tuple(d["locations"]),
            trigger_time=float(d["trigger_time"]),
            emitted_at=float(d["emitted_at"]),
            predicted_time=float(d["predicted_time"]),
            trace_id=d.get("trace_id"),
        )


class FlightRecorder:
    """Bounded, thread-safe ring buffer of audit records.

    Like its aviation namesake it never fills up and never blocks the
    thing it observes: appends are O(1), the oldest records age out
    past ``capacity``, and a concurrent dump sees a consistent copy.
    Any record exposing ``to_dict()`` fits — prediction provenance and
    lifecycle events share the same crash-box semantics.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._buf: Deque = deque(maxlen=self.capacity)
        self._appended = 0
        self._lock = threading.Lock()

    def append(self, record) -> None:
        """Record one audit record (anything with ``to_dict``)."""
        with self._lock:
            self._buf.append(record)
            self._appended += 1

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def appended(self) -> int:
        """Total records ever appended (including aged-out ones)."""
        return self._appended

    @property
    def dropped(self) -> int:
        """Records that aged out of the ring."""
        with self._lock:
            return self._appended - len(self._buf)

    def records(self) -> List:
        """Current contents, oldest first (copy)."""
        with self._lock:
            return list(self._buf)

    def clear(self) -> None:
        """Empty the buffer (the appended total survives)."""
        with self._lock:
            self._buf.clear()

    def dump_jsonl(self, fh: IO[str]) -> int:
        """Write one JSON object per line; returns the line count."""
        records = self.records()
        for rec in records:
            fh.write(json.dumps(rec.to_dict()) + "\n")
        return len(records)


def load_jsonl(path) -> List[dict]:
    """Read a ``--provenance-out`` JSON-lines file back into dicts."""
    records: List[dict] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a provenance line: {exc}"
                ) from exc
    return records


def _fmt_chain(chain: Sequence[Sequence[int]]) -> str:
    return " -> ".join(f"{t}(+{d})" for t, d in chain)


def render_record(
    record: dict,
    index: Optional[int] = None,
    event_name=None,
) -> str:
    """Human-readable rendering of one provenance dict.

    ``event_name`` is an optional ``int -> str`` resolver (the trained
    model's template text) applied to the anchor/fatal event ids.
    """
    def name(tid: int) -> str:
        if event_name is None:
            return f"event {tid}"
        return f"event {tid} '{str(event_name(tid))[:40]}'"

    head = f"prediction #{index}" if index is not None else "prediction"
    detector = record.get("detector", {})
    window = record.get("window", {})
    det_bits = " ".join(
        f"{k}={v:g}" if isinstance(v, (int, float)) else f"{k}={v}"
        for k, v in sorted(detector.items())
    )
    if window.get("kind") == "quantile":
        win = (
            f"adaptive quantile window [q10={window['lo']:g}, "
            f"q50={window['med']:g}, q90={window['hi']:g}] samples"
        )
    else:
        win = f"fixed chain span {window.get('span', 0):g} samples"
    lines = [
        f"{head}: {name(record['fatal_event'])} "
        f"predicted at t={record['predicted_time']:.1f} "
        f"(source={record.get('source', '?')})",
        f"  triggered by : {name(record['anchor_event'])} at "
        f"{record['anchor_location']} — sample {record['anchor_sample']} "
        f"count {record['anchor_value']:g} tripped the detector",
        f"  detector     : {det_bits}",
        f"  chain (θ)    : {_fmt_chain(record.get('chain', ()))} "
        f"(delays in samples)",
        f"  train window : {win}",
        f"  analysis     : {record['analysis_time']:.3f}s "
        f"(visible at t={record['emitted_at']:.1f})",
        f"  lead time    : {record['lead_time']:.1f}s of usable warning",
        f"  locations    : {' '.join(record.get('locations', ()))}",
    ]
    return "\n".join(lines)
