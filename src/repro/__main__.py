"""``python -m repro`` — alias for the ``elsa-repro`` CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
