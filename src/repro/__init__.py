"""ELSA-Repro: hybrid fault prediction for HPC systems.

A from-scratch reproduction of *"Fault prediction under the microscope: A
closer look into HPC systems"* (Gainaru, Cappello, Snir, Kramer — SC 2012):
signal-analysis + data-mining hybrid failure prediction over HPC event
logs, with location-aware predictions and a checkpointing impact model.

Quickstart::

    from repro import bluegene_scenario, ELSA

    scenario = bluegene_scenario(duration_days=4.0, seed=7)
    elsa = ELSA(scenario.machine)
    elsa.fit(scenario.records, t_train_end=scenario.train_end)
    predictions = elsa.predict(
        scenario.records, scenario.train_end, scenario.t_end
    )

Subpackages: :mod:`repro.simulation` (synthetic HPC substrate),
:mod:`repro.helo` (template mining), :mod:`repro.signals` (signal layer),
:mod:`repro.mining` (GRITE), :mod:`repro.location` (propagation),
:mod:`repro.prediction` (online predictors + evaluation),
:mod:`repro.checkpoint` (waste model), :mod:`repro.core` (pipeline),
:mod:`repro.obs` (metrics, tracing, structured logging).
"""

from repro import obs
from repro.core import ELSA, AdaptiveELSA, PipelineConfig, TrainedModel
from repro.datasets import Scenario, bluegene_scenario, mercury_scenario
from repro.prediction import (
    EvaluationConfig,
    EvaluationResult,
    evaluate_predictions,
)

__version__ = "1.1.0"

__all__ = [
    "ELSA",
    "AdaptiveELSA",
    "PipelineConfig",
    "TrainedModel",
    "Scenario",
    "bluegene_scenario",
    "mercury_scenario",
    "EvaluationConfig",
    "EvaluationResult",
    "evaluate_predictions",
    "obs",
    "__version__",
]
