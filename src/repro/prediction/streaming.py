"""Record-at-a-time hybrid predictor with checkpointable state.

:class:`~repro.prediction.engine.HybridPredictor` is a batch engine: it
wants the whole test window up front, extracts signals, and scans them.
A production deployment instead consumes an endless stream and must
survive being killed mid-run.  :class:`StreamingHybridPredictor` is the
same algorithm refactored around per-sample state:

* per-anchor online detectors are fed one sample at a time (they are
  causal already — ``process_array`` is just a loop over ``process``);
* chain triggering, suppression, and location attachment run per closed
  sample with the identical arithmetic and iteration order;
* everything mutable (detector windows, active-chain suppression map,
  partial sample accumulators, emitted predictions) serializes to a
  JSON-ready dict via :meth:`state_dict` and restores via
  :meth:`load_state`.

The invariant the crash-recovery tests enforce: feeding the same
records through ``feed``/``finish`` — in any chunking, with any number
of ``state_dict``/``load_state`` round-trips in between — yields
predictions byte-identical to the batch engine over the same window.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.lifecycle.ladder import Rung
from repro.prediction.analysis_time import AnalysisTimeModel
from repro.prediction.engine import HybridPredictor, Prediction
from repro.signals.outliers import restore_detector
from repro.simulation.trace import LogRecord

#: bump when the serialized layout changes incompatibly
STATE_VERSION = 1


class StreamingHybridPredictor(HybridPredictor):
    """Resumable, sample-at-a-time variant of the hybrid engine.

    Construct with the same model artifacts as ``HybridPredictor`` plus
    the stream geometry (``t_start``/``t_end``/``sampling_period``); then
    ``feed`` classified record chunks in timestamp order and ``finish``
    once the stream ends.  ``state_dict``/``load_state`` snapshot and
    restore all mutable state between chunks.
    """

    def __init__(
        self,
        *args,
        t_start: float,
        t_end: float,
        sampling_period: float = 10.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if t_end <= t_start:
            raise ValueError("empty stream window")
        self.t_start = float(t_start)
        self.t_end = float(t_end)
        self.sampling_period = float(sampling_period)
        self.n_samples = int(
            np.ceil((self.t_end - self.t_start) / self.sampling_period)
        )
        self._anchors = sorted({c.anchor for c in self.chains})
        self._detectors = {tid: self._make_detector(tid) for tid in self._anchors}
        # mutable stream state -------------------------------------------------
        self._k = 0  # sample currently accumulating
        self._n_fed = 0  # records consumed so far
        self._finished = False
        self._cur_msg_count = 0
        self._cur_anchor_counts: Dict[int, int] = {}
        self._cur_anchor_locs: Dict[int, List[str]] = {}
        # full per-type counts, kept only while a drift detector is
        # attached (advisory telemetry — not part of checkpoint state)
        self._cur_type_counts: Dict[int, int] = {}
        self._active: Dict[Tuple, float] = {}
        self._predictions: List[Prediction] = []
        self.chain_usage = Counter()
        self.n_too_late = 0
        #: optional live self-evaluation / drift watchers (see
        #: :mod:`repro.prediction.scoreboard`); both default off so the
        #: byte-identical-to-batch invariant is unconditional.
        self.scoreboard = None
        self.drift_detector = None

    # -- feeding -------------------------------------------------------------

    def feed(
        self,
        records: Sequence[LogRecord],
        event_ids: Sequence[Optional[int]],
    ) -> None:
        """Consume a chunk of classified records (timestamp order).

        ``event_ids`` parallels ``records`` (``None`` = unclassified),
        exactly as in :class:`~repro.prediction.engine.TestStream`.
        """
        if len(records) != len(event_ids):
            raise ValueError("event_ids must parallel records")
        if self._finished:
            raise RuntimeError("stream already finished")
        for rec, tid in zip(records, event_ids):
            if not self.t_start <= rec.timestamp < self.t_end:
                raise ValueError(
                    f"record at {rec.timestamp} outside the stream window"
                )
            s = int((rec.timestamp - self.t_start) / self.sampling_period)
            if s < self._k:
                raise ValueError("records must arrive in sample order")
            while self._k < s:
                self._close_sample()
            self._cur_msg_count += 1
            if tid is not None and tid in self._detectors:
                self._cur_anchor_counts[tid] = (
                    self._cur_anchor_counts.get(tid, 0) + 1
                )
                self._cur_anchor_locs.setdefault(tid, []).append(rec.location)
            if self.drift_detector is not None and tid is not None:
                self._cur_type_counts[tid] = (
                    self._cur_type_counts.get(tid, 0) + 1
                )
            self._n_fed += 1

    def finish(self) -> List[Prediction]:
        """Close all remaining samples; returns the full prediction list.

        The list covers the whole run including any state restored from a
        checkpoint, sorted by ``emitted_at`` like the batch engine.
        """
        while self._k < self.n_samples:
            self._close_sample()
        self._finished = True
        predictions = sorted(self._predictions, key=lambda p: p.emitted_at)
        self._predictions = predictions
        if self.scoreboard is not None:
            self.scoreboard.advance(self.t_end)
            self.scoreboard.finalize()
        obs.counter("predictor.runs").inc()
        obs.counter("predictor.predictions_issued").inc(len(predictions))
        obs.counter("predictor.predictions_too_late").inc(self.n_too_late)
        return predictions

    # -- live self-evaluation -----------------------------------------------

    def attach_scoreboard(self, scoreboard) -> None:
        """Attach an :class:`~repro.prediction.scoreboard.OnlineScoreboard`.

        From then on every emitted prediction is registered with it and
        the scoreboard clock advances as samples close, so its
        sliding-window gauges update live (attach before feeding).
        """
        self.scoreboard = scoreboard

    def attach_drift_detector(self, detector=None):
        """Watch the live stream for divergence from the fitted model.

        ``detector`` defaults to a
        :class:`~repro.prediction.scoreboard.DriftDetector` whose
        baseline comes from the trained per-signal characterization.
        Returns the attached detector.
        """
        if detector is None:
            from repro.prediction.scoreboard import DriftDetector

            detector = DriftDetector.from_behaviors(
                self.behaviors, self._anchors
            )
        self.drift_detector = detector
        return detector

    # -- model hot-swap -------------------------------------------------------

    def swap_model(self, model) -> None:
        """Atomically replace the model artifacts mid-stream.

        ``model`` is a :class:`~repro.core.model.TrainedModel` (a
        validated candidate from the self-healing shadow retrainer).
        Chains, behaviours, locations, prediction windows and the
        per-anchor detectors are rebuilt from it; the *stream* state —
        sample cursor, resume cursor, emitted predictions, suppression
        map, partial-sample accumulators — is untouched, so no
        prediction is dropped or duplicated across the swap boundary.
        Fresh detectors restart their warmup; suppression entries for
        chains the new model no longer arms simply expire.  Call
        between ``feed`` chunks (the lifecycle loop does).
        """
        if self._finished:
            raise RuntimeError("stream already finished")
        self.chains = [
            c for c in model.predictive_chains
            if c.confidence >= self.config.min_chain_confidence
        ]
        self.behaviors = dict(model.behaviors)
        self.location_predictor = model.location_predictor
        self.span_quantiles = dict(model.span_quantiles)
        self.analysis_model = AnalysisTimeModel.hybrid(len(self.chains))
        self._anchors = sorted({c.anchor for c in self.chains})
        self._detectors = {
            tid: self._make_detector(tid) for tid in self._anchors
        }
        obs.counter("lifecycle.predictor_swaps").inc()

    # -- per-sample engine -----------------------------------------------------

    def _close_sample(self) -> None:
        """Seal sample ``self._k``: detect outliers, trigger chains."""
        s = self._k
        counts = self._cur_anchor_counts
        locs = self._cur_anchor_locs
        analysis_t = float(
            self.analysis_model.times_for(
                np.array([self._cur_msg_count], dtype=np.int64)
            )[0]
        )
        if self.ladder is not None:
            # one rung step per closed sample, following the breakers
            self.ladder.update(self.breakers.tripped())
        flagged: Dict[int, bool] = {}
        for tid in self._anchors:
            value = float(counts.get(tid, 0))
            result = self.breakers.guarded(
                "signals", lambda: self._detectors[tid].process(value)
            )
            if result is None:
                self.degraded_anchors.append(tid)
                if (
                    self.ladder is not None
                    and self.ladder.rung == Rung.RATE_BASELINE
                ):
                    nb = self.behaviors.get(tid)
                    if self.ladder.rate_baseline_outlier(
                        value, nb.mean_rate if nb is not None else None
                    ):
                        flagged[tid] = True
                continue
            is_outlier, _corrected = result
            if is_outlier:
                flagged[tid] = True
        n_before = len(self._predictions)
        if flagged:
            self._trigger_chains(s, flagged, counts, locs, analysis_t)
        if self.drift_detector is not None:
            self.drift_detector.observe(
                self._cur_msg_count, self._cur_type_counts
            )
        if self.scoreboard is not None:
            for pred in self._predictions[n_before:]:
                self.scoreboard.record_prediction(pred)
            self.scoreboard.advance(
                self.t_start + (s + 1) * self.sampling_period
            )
        self._k += 1
        self._cur_msg_count = 0
        self._cur_anchor_counts = {}
        self._cur_anchor_locs = {}
        self._cur_type_counts = {}

    def _trigger_chains(
        self,
        s: int,
        flagged: Dict[int, bool],
        counts: Dict[int, int],
        locs: Dict[int, List[str]],
        analysis_t: float,
    ) -> None:
        """Identical trigger arithmetic to the batch engine, one sample."""
        cfg = self.config
        period = self.sampling_period
        t_anchor = self.t_start + s * period
        t_trigger = t_anchor + period
        t_emit = t_trigger + analysis_t
        for chain in self.chains:
            if not flagged.get(chain.anchor):
                continue
            ckey = self._chain_key(chain)
            quantiles = self.span_quantiles.get(ckey)
            if quantiles is not None:
                q_lo, q_med, q_hi = quantiles
                t_pred = t_anchor + q_med * period + period
                t_pred_lo = t_anchor + q_lo * period + period
                t_pred_hi = t_anchor + q_hi * period + period
            else:
                t_pred = t_anchor + chain.span * period + period
                t_pred_lo = t_pred_hi = None
            if t_pred - t_emit < cfg.min_visible_window or t_pred <= t_emit:
                self.n_too_late += 1
                continue
            anchor_locs = locs.get(chain.anchor, [])
            anchor_loc = anchor_locs[0] if anchor_locs else "unknown"
            skey = (ckey, anchor_loc)
            until = self._active.get(skey)
            if until is not None and t_trigger <= until:
                continue
            self._active[skey] = (
                (t_pred_hi if t_pred_hi is not None else t_pred)
                + cfg.suppression_slack
            )
            locations = self._attach_locations(chain, anchor_loc)
            pred = Prediction(
                trigger_time=t_trigger,
                emitted_at=t_emit,
                predicted_time=t_pred,
                locations=locations,
                chain_key=ckey,
                anchor_event=chain.anchor,
                fatal_event=chain.items[-1].event_type,
                source=self.source_name,
                predicted_lo=t_pred_lo,
                predicted_hi=t_pred_hi,
            )
            self._predictions.append(pred)
            self.chain_usage[pred.chain_key] += 1
            self._record_provenance(
                pred, chain, s,
                anchor_value=float(counts.get(chain.anchor, 0)),
                quantiles=quantiles, anchor_loc=anchor_loc,
            )

    # -- checkpoint serialization ---------------------------------------------

    @property
    def n_records_fed(self) -> int:
        """Records consumed so far (the resume cursor)."""
        return self._n_fed

    def state_dict(self) -> dict:
        """All mutable stream state, JSON-ready."""
        return {
            "version": STATE_VERSION,
            "n_chains": len(self.chains),
            "n_samples": self.n_samples,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "sampling_period": self.sampling_period,
            "k": self._k,
            "n_fed": self._n_fed,
            "cur": {
                "msg_count": self._cur_msg_count,
                "anchor_counts": {
                    str(t): n for t, n in self._cur_anchor_counts.items()
                },
                "anchor_locs": {
                    str(t): list(l) for t, l in self._cur_anchor_locs.items()
                },
            },
            "active": [
                [[list(item) for item in ckey], loc, until]
                for (ckey, loc), until in self._active.items()
            ],
            "chain_usage": [
                [[list(item) for item in ckey], n]
                for ckey, n in self.chain_usage.items()
            ],
            "n_too_late": self.n_too_late,
            "detectors": {
                str(t): d.state_dict() for t, d in self._detectors.items()
            },
            "predictions": [p.to_dict() for p in self._predictions],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this instance.

        The instance must have been built from the same trained model
        and stream geometry; mismatches raise ``ValueError`` instead of
        silently resuming into a different run.
        """
        if state.get("version") != STATE_VERSION:
            raise ValueError(
                f"checkpoint version {state.get('version')!r} not supported"
            )
        for key, mine in (
            ("n_chains", len(self.chains)),
            ("n_samples", self.n_samples),
            ("t_start", self.t_start),
            ("t_end", self.t_end),
            ("sampling_period", self.sampling_period),
        ):
            if state[key] != mine:
                raise ValueError(
                    f"checkpoint mismatch: {key}={state[key]!r}, "
                    f"this run has {mine!r}"
                )
        self._k = int(state["k"])
        self._n_fed = int(state["n_fed"])
        cur = state["cur"]
        self._cur_msg_count = int(cur["msg_count"])
        self._cur_anchor_counts = {
            int(t): int(n) for t, n in cur["anchor_counts"].items()
        }
        self._cur_anchor_locs = {
            int(t): list(l) for t, l in cur["anchor_locs"].items()
        }
        self._active = {
            (tuple(tuple(item) for item in ckey), loc): float(until)
            for ckey, loc, until in state["active"]
        }
        self.chain_usage = Counter(
            {
                tuple(tuple(item) for item in ckey): int(n)
                for ckey, n in state["chain_usage"]
            }
        )
        self.n_too_late = int(state["n_too_late"])
        self._detectors = {
            int(t): restore_detector(d) for t, d in state["detectors"].items()
        }
        self._predictions = [
            Prediction.from_dict(d) for d in state["predictions"]
        ]
        self._finished = False
