"""Record-at-a-time hybrid predictor with checkpointable state.

:class:`~repro.prediction.engine.HybridPredictor` is a batch engine: it
wants the whole test window up front, extracts signals, and scans them.
A production deployment instead consumes an endless stream and must
survive being killed mid-run.  :class:`StreamingHybridPredictor` is the
same algorithm refactored around per-sample state:

* per-anchor online detectors are fed one sample at a time (they are
  causal already — ``process_array`` is just a loop over ``process``);
* chain triggering, suppression, and location attachment run per closed
  sample with the identical arithmetic and iteration order;
* everything mutable (detector windows, active-chain suppression map,
  partial sample accumulators, emitted predictions) serializes to a
  JSON-ready dict via :meth:`state_dict` and restores via
  :meth:`load_state`.

The invariant the crash-recovery tests enforce: feeding the same
records through ``feed``/``finish`` — in any chunking, with any number
of ``state_dict``/``load_state`` round-trips in between — yields
predictions byte-identical to the batch engine over the same window.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.columnar import RecordBatch
from repro.lifecycle.ladder import Rung
from repro.mining.prefix import ChainPrefixIndex
from repro.prediction.analysis_time import AnalysisTimeModel
from repro.prediction.engine import HybridPredictor, Prediction
from repro.signals.bank import BankLayoutError, VectorizedDetectorBank
from repro.signals.outliers import restore_detector
from repro.simulation.trace import LogRecord


def _location_accessor(records):
    """Index → location string, without materializing ``LogRecord``s.

    The feed loops only ever touch ``records[i].location``; on a
    :class:`RecordBatch` that is one pool lookup, on a record sequence
    it is the plain attribute.
    """
    if isinstance(records, RecordBatch):
        pool = records.loc_pool
        lids = records.loc_ids
        return lambda i: pool[lids[i]]
    return lambda i: records[i].location

#: bump when the serialized layout changes incompatibly
STATE_VERSION = 1


class StreamingHybridPredictor(HybridPredictor):
    """Resumable, sample-at-a-time variant of the hybrid engine.

    Construct with the same model artifacts as ``HybridPredictor`` plus
    the stream geometry (``t_start``/``t_end``/``sampling_period``); then
    ``feed`` classified record chunks in timestamp order and ``finish``
    once the stream ends.  ``state_dict``/``load_state`` snapshot and
    restore all mutable state between chunks.
    """

    def __init__(
        self,
        *args,
        t_start: float,
        t_end: float,
        sampling_period: float = 10.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if t_end <= t_start:
            raise ValueError("empty stream window")
        self.t_start = float(t_start)
        self.t_end = float(t_end)
        self.sampling_period = float(sampling_period)
        self.n_samples = int(
            np.ceil((self.t_end - self.t_start) / self.sampling_period)
        )
        self._anchors = sorted({c.anchor for c in self.chains})
        self._anchor_arr = np.asarray(self._anchors, dtype=np.int64)
        self._detectors = {tid: self._make_detector(tid) for tid in self._anchors}
        self._rebuild_bank()
        self._rebuild_chain_index()
        # mutable stream state -------------------------------------------------
        self._k = 0  # sample currently accumulating
        self._n_fed = 0  # records consumed so far
        self._finished = False
        self._cur_msg_count = 0
        self._cur_anchor_counts: Dict[int, int] = {}
        self._cur_anchor_locs: Dict[int, List[str]] = {}
        # full per-type counts, kept only while a drift detector is
        # attached (advisory telemetry — not part of checkpoint state)
        self._cur_type_counts: Dict[int, int] = {}
        self._active: Dict[Tuple, float] = {}
        self._predictions: List[Prediction] = []
        self.chain_usage = Counter()
        self.n_too_late = 0
        #: optional live self-evaluation / drift watchers (see
        #: :mod:`repro.prediction.scoreboard`); both default off so the
        #: byte-identical-to-batch invariant is unconditional.
        self.scoreboard = None
        self.drift_detector = None

    # -- fast path -----------------------------------------------------------

    def _rebuild_bank(self) -> None:
        """(Re)absorb the scalar detectors into a vectorized bank.

        Call whenever ``self._detectors`` is replaced wholesale
        (construction, ``load_state``, ``swap_model``).  When the bank is
        active it owns detection state and the scalar dict is only a
        construction artifact; :meth:`state_dict` reads the bank.  Any
        layout the bank cannot express keeps the scalar path.
        """
        self._bank = None
        if (
            not getattr(self.config, "fast_path", True)
            or not self._anchors
            or set(self._detectors) != set(self._anchors)
        ):
            return
        try:
            self._bank = VectorizedDetectorBank(
                [self._detectors[t] for t in self._anchors]
            )
        except BankLayoutError:
            self._bank = None

    def _rebuild_chain_index(self) -> None:
        """Chain positions grouped by anchor, in ``self.chains`` order.

        Rebuilds the shared :class:`ChainPrefixIndex` (the batch engine
        inherits one from construction; ``swap_model`` re-arms chains so
        the streaming engine refreshes it).  :meth:`_trigger_chains`
        walks only the chains whose anchor flagged, merging groups back
        into original-index order so the suppression/emission sequence
        is identical to the full scan.
        """
        self.prefix = ChainPrefixIndex(self.chains, self.span_quantiles)
        self._chains_by_anchor = self.prefix.by_anchor

    # -- feeding -------------------------------------------------------------

    def feed(
        self,
        records: Sequence[LogRecord],
        event_ids: Sequence[Optional[int]],
    ) -> None:
        """Consume a chunk of classified records (timestamp order).

        ``event_ids`` parallels ``records`` (``None`` = unclassified),
        exactly as in :class:`~repro.prediction.engine.TestStream`.

        ``records`` may also be a :class:`~repro.columnar.RecordBatch`
        (with ``event_ids`` optionally an int64 array, ``-1`` =
        unclassified): the fast path then reads the timestamp/id arrays
        directly — no per-record object or iterator work at all — and
        materializes location strings only for flagged samples.

        On the fast path chunks are validated and grouped per sampling
        interval with numpy and accumulated in bulk; the resulting state
        transitions (and therefore predictions and checkpoints) are
        identical to the record-at-a-time reference loop
        (:meth:`_feed_scalar`), which remains the escape hatch.  The one
        visible difference: a chunk containing an out-of-window or
        out-of-order record is rejected *before* any of it is consumed,
        where the scalar loop consumes the valid prefix first.
        """
        if len(records) != len(event_ids):
            raise ValueError("event_ids must parallel records")
        if self._finished:
            raise RuntimeError("stream already finished")
        if len(records) > 1 and getattr(self.config, "fast_path", True):
            self._feed_batched(records, event_ids)
        else:
            if isinstance(records, RecordBatch):
                records = records.to_records()
            if isinstance(event_ids, np.ndarray):
                event_ids = [
                    None if e < 0 else e for e in event_ids.tolist()
                ]
            self._feed_scalar(records, event_ids)

    def _feed_scalar(
        self,
        records: Sequence[LogRecord],
        event_ids: Sequence[Optional[int]],
    ) -> None:
        """Reference record-at-a-time feed loop."""
        for rec, tid in zip(records, event_ids):
            if not self.t_start <= rec.timestamp < self.t_end:
                raise ValueError(
                    f"record at {rec.timestamp} outside the stream window"
                )
            s = int((rec.timestamp - self.t_start) / self.sampling_period)
            if s < self._k:
                raise ValueError("records must arrive in sample order")
            while self._k < s:
                self._close_sample()
            self._cur_msg_count += 1
            if tid is not None and tid in self._detectors:
                self._cur_anchor_counts[tid] = (
                    self._cur_anchor_counts.get(tid, 0) + 1
                )
                self._cur_anchor_locs.setdefault(tid, []).append(rec.location)
            if self.drift_detector is not None and tid is not None:
                self._cur_type_counts[tid] = (
                    self._cur_type_counts.get(tid, 0) + 1
                )
            self._n_fed += 1

    def _feed_batched(
        self,
        records: Sequence[LogRecord],
        event_ids: Sequence[Optional[int]],
    ) -> None:
        """Bulk feed: one numpy pass per chunk, per-group accumulation.

        Computes every record's sample index in one vectorized shot,
        splits the chunk into runs of equal sample index, and applies
        each run as bulk increments between ``_close_sample`` calls —
        the same sequence of state transitions the scalar loop produces,
        minus the per-record interpreter work.
        """
        n = len(records)
        if isinstance(records, RecordBatch):
            ts = records.timestamps
        else:
            ts = np.fromiter(
                (r.timestamp for r in records), dtype=np.float64, count=n
            )
        bad = (ts < self.t_start) | (ts >= self.t_end)
        if bad.any():
            i = int(np.argmax(bad))
            raise ValueError(
                f"record at {records[i].timestamp} outside the stream window"
            )
        s_arr = ((ts - self.t_start) / self.sampling_period).astype(np.int64)
        if s_arr[0] < self._k or (s_arr[1:] < s_arr[:-1]).any():
            raise ValueError("records must arrive in sample order")
        if isinstance(event_ids, np.ndarray):
            tids = event_ids.astype(np.int64, copy=False)
        else:
            tids = np.fromiter(
                (-1 if e is None else e for e in event_ids),
                dtype=np.int64,
                count=n,
            )
        if self._bank is not None and int(s_arr[-1]) > self._k:
            self._feed_batched_bank(records, s_arr, tids)
        else:
            self._feed_batched_segments(records, s_arr, tids)
        self._n_fed += n

    def _feed_batched_segments(
        self,
        records: Sequence[LogRecord],
        s_arr: np.ndarray,
        tids: np.ndarray,
    ) -> None:
        """Per-sample-run accumulation; every sample closes via
        :meth:`_close_sample` (one detector tick each)."""
        n = len(records)
        loc_of = _location_accessor(records)
        hit_idx = np.flatnonzero(np.isin(tids, self._anchor_arr))
        cuts = np.flatnonzero(s_arr[1:] != s_arr[:-1]) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [n]))
        drift = self.drift_detector is not None
        h = 0
        n_hits = hit_idx.shape[0]
        for a, b in zip(starts.tolist(), ends.tolist()):
            s = int(s_arr[a])
            while self._k < s:
                self._close_sample()
            self._cur_msg_count += b - a
            counts = self._cur_anchor_counts
            locs = self._cur_anchor_locs
            while h < n_hits and hit_idx[h] < b:
                j = int(hit_idx[h])
                t = int(tids[j])
                counts[t] = counts.get(t, 0) + 1
                locs.setdefault(t, []).append(loc_of(j))
                h += 1
            if drift:
                seg = tids[a:b]
                seg = seg[seg >= 0]
                if seg.size:
                    tc = self._cur_type_counts
                    uniq, cnt = np.unique(seg, return_counts=True)
                    for t, c in zip(uniq.tolist(), cnt.tolist()):
                        tc[t] = tc.get(t, 0) + c

    def _feed_batched_bank(
        self,
        records: Sequence[LogRecord],
        s_arr: np.ndarray,
        tids: np.ndarray,
    ) -> None:
        """Close every complete sample of the chunk with *one* bank call.

        Builds the per-sample anchor-count matrix for all samples the
        chunk completes, runs one :meth:`VectorizedDetectorBank.tick_many`
        (inside one circuit-breaker boundary — a failure degrades every
        anchor for the whole chunk, where the scalar loop degrades them
        tick by tick), then replays the cheap per-sample bookkeeping —
        ladder, chain triggering, drift, scoreboard — in the exact order
        :meth:`_close_sample` uses.  Locations and per-type counts are
        materialized lazily, only for samples that need them.
        """
        n = len(records)
        loc_of = _location_accessor(records)
        k0 = self._k
        m = int(s_arr[-1]) - k0
        rel = s_arr - k0
        anchors = self._anchors
        na = len(anchors)
        closed = rel < m
        hit_mask = np.isin(tids, self._anchor_arr)
        values = np.zeros((na, m), dtype=np.float64)
        hm = hit_mask & closed
        if hm.any():
            np.add.at(
                values,
                (np.searchsorted(self._anchor_arr, tids[hm]), rel[hm]),
                1.0,
            )
        for t, c in self._cur_anchor_counts.items():
            values[int(np.searchsorted(self._anchor_arr, t)), 0] += c
        msg = np.bincount(rel[closed], minlength=m)
        msg[0] += self._cur_msg_count
        result = self.breakers.guarded(
            "signals", lambda: self._bank.tick_many(values)
        )
        flags_mat = result[0] if result is not None else None
        drift = self.drift_detector is not None
        if (
            flags_mat is not None
            and self.ladder is None
            and self.scoreboard is None
            and not drift
        ):
            # no per-sample watchers attached: only flagged samples have
            # any bookkeeping at all, and flags are rare
            for j in np.flatnonzero(flags_mat.any(axis=0)).tolist():
                analysis_t = self.analysis_model.time_for(int(msg[j]))
                flagged = {
                    anchors[i]: True for i in np.flatnonzero(flags_mat[:, j])
                }
                a = int(np.searchsorted(rel, j, "left"))
                b = int(np.searchsorted(rel, j, "right"))
                counts = {
                    anchors[i]: int(values[i, j])
                    for i in np.flatnonzero(values[:, j])
                }
                locs: Dict[int, List[str]] = {}
                if j == 0:
                    for t, ls in self._cur_anchor_locs.items():
                        locs[t] = list(ls)
                for idx in range(a, b):
                    if hit_mask[idx]:
                        locs.setdefault(int(tids[idx]), []).append(
                            loc_of(idx)
                        )
                self._trigger_chains(
                    k0 + j, flagged, counts, locs, analysis_t
                )
            self._k = k0 + m
            self._finish_chunk_accumulators(records, rel, tids, hit_mask, m)
            return
        for j in range(m):
            s = k0 + j
            analysis_t = self.analysis_model.time_for(int(msg[j]))
            if self.ladder is not None:
                self.ladder.update(self.breakers.tripped())
            flagged: Dict[int, bool] = {}
            if flags_mat is not None:
                col = flags_mat[:, j]
                if col.any():
                    for i in np.flatnonzero(col):
                        flagged[anchors[i]] = True
            else:
                for i, tid in enumerate(anchors):
                    self.degraded_anchors.append(tid)
                    if (
                        self.ladder is not None
                        and self.ladder.rung == Rung.RATE_BASELINE
                    ):
                        nb = self.behaviors.get(tid)
                        if self.ladder.rate_baseline_outlier(
                            float(values[i, j]),
                            nb.mean_rate if nb is not None else None,
                        ):
                            flagged[tid] = True
            n_before = len(self._predictions)
            if flagged or drift:
                a = int(np.searchsorted(rel, j, "left"))
                b = int(np.searchsorted(rel, j, "right"))
            if flagged:
                counts = {
                    anchors[i]: int(values[i, j])
                    for i in np.flatnonzero(values[:, j])
                }
                locs: Dict[int, List[str]] = {}
                if j == 0:
                    for t, ls in self._cur_anchor_locs.items():
                        locs[t] = list(ls)
                for idx in range(a, b):
                    if hit_mask[idx]:
                        locs.setdefault(int(tids[idx]), []).append(
                            loc_of(idx)
                        )
                self._trigger_chains(s, flagged, counts, locs, analysis_t)
            if drift:
                tc: Dict[int, int] = (
                    dict(self._cur_type_counts) if j == 0 else {}
                )
                seg = tids[a:b]
                seg = seg[seg >= 0]
                if seg.size:
                    uniq, cnt = np.unique(seg, return_counts=True)
                    for t, c in zip(uniq.tolist(), cnt.tolist()):
                        tc[t] = tc.get(t, 0) + c
                self.drift_detector.observe(int(msg[j]), tc)
            if self.scoreboard is not None:
                for pred in self._predictions[n_before:]:
                    self.scoreboard.record_prediction(pred)
                self.scoreboard.advance(
                    self.t_start + (s + 1) * self.sampling_period
                )
            self._k += 1
        self._finish_chunk_accumulators(records, rel, tids, hit_mask, m)

    def _finish_chunk_accumulators(
        self,
        records: Sequence[LogRecord],
        rel: np.ndarray,
        tids: np.ndarray,
        hit_mask: np.ndarray,
        m: int,
    ) -> None:
        """Restart the partial-sample accumulators from the chunk's
        trailing (still open) sample."""
        n = len(records)
        self._cur_msg_count = 0
        self._cur_anchor_counts = {}
        self._cur_anchor_locs = {}
        self._cur_type_counts = {}
        a = int(np.searchsorted(rel, m, "left"))
        if a < n:
            loc_of = _location_accessor(records)
            self._cur_msg_count = n - a
            counts = self._cur_anchor_counts
            locs = self._cur_anchor_locs
            for idx in np.flatnonzero(hit_mask[a:]) + a:
                t = int(tids[idx])
                counts[t] = counts.get(t, 0) + 1
                locs.setdefault(t, []).append(loc_of(int(idx)))
            if self.drift_detector is not None:
                seg = tids[a:]
                seg = seg[seg >= 0]
                if seg.size:
                    tc = self._cur_type_counts
                    uniq, cnt = np.unique(seg, return_counts=True)
                    for t, c in zip(uniq.tolist(), cnt.tolist()):
                        tc[t] = tc.get(t, 0) + c

    def finish(self) -> List[Prediction]:
        """Close all remaining samples; returns the full prediction list.

        The list covers the whole run including any state restored from a
        checkpoint, sorted by ``emitted_at`` like the batch engine.
        """
        while self._k < self.n_samples:
            self._close_sample()
        self._finished = True
        predictions = sorted(self._predictions, key=lambda p: p.emitted_at)
        self._predictions = predictions
        if self.scoreboard is not None:
            self.scoreboard.advance(self.t_end)
            self.scoreboard.finalize()
        obs.counter("predictor.runs").inc()
        obs.counter("predictor.predictions_issued").inc(len(predictions))
        obs.counter("predictor.predictions_too_late").inc(self.n_too_late)
        return predictions

    # -- live self-evaluation -----------------------------------------------

    def attach_scoreboard(self, scoreboard) -> None:
        """Attach an :class:`~repro.prediction.scoreboard.OnlineScoreboard`.

        From then on every emitted prediction is registered with it and
        the scoreboard clock advances as samples close, so its
        sliding-window gauges update live (attach before feeding).
        """
        self.scoreboard = scoreboard

    def attach_drift_detector(self, detector=None):
        """Watch the live stream for divergence from the fitted model.

        ``detector`` defaults to a
        :class:`~repro.prediction.scoreboard.DriftDetector` whose
        baseline comes from the trained per-signal characterization.
        Returns the attached detector.
        """
        if detector is None:
            from repro.prediction.scoreboard import DriftDetector

            detector = DriftDetector.from_behaviors(
                self.behaviors, self._anchors
            )
        self.drift_detector = detector
        return detector

    # -- model hot-swap -------------------------------------------------------

    def swap_model(self, model) -> None:
        """Atomically replace the model artifacts mid-stream.

        ``model`` is a :class:`~repro.core.model.TrainedModel` (a
        validated candidate from the self-healing shadow retrainer).
        Chains, behaviours, locations, prediction windows and the
        per-anchor detectors are rebuilt from it; the *stream* state —
        sample cursor, resume cursor, emitted predictions, suppression
        map, partial-sample accumulators — is untouched, so no
        prediction is dropped or duplicated across the swap boundary.
        Fresh detectors restart their warmup; suppression entries for
        chains the new model no longer arms simply expire.  Call
        between ``feed`` chunks (the lifecycle loop does).
        """
        if self._finished:
            raise RuntimeError("stream already finished")
        self.chains = [
            c for c in model.predictive_chains
            if c.confidence >= self.config.min_chain_confidence
        ]
        self.behaviors = dict(model.behaviors)
        self.location_predictor = model.location_predictor
        self.span_quantiles = dict(model.span_quantiles)
        self.analysis_model = AnalysisTimeModel.hybrid(len(self.chains))
        self._anchors = sorted({c.anchor for c in self.chains})
        self._anchor_arr = np.asarray(self._anchors, dtype=np.int64)
        self._detectors = {
            tid: self._make_detector(tid) for tid in self._anchors
        }
        self._rebuild_bank()
        self._rebuild_chain_index()
        obs.counter("lifecycle.predictor_swaps").inc()

    # -- per-sample engine -----------------------------------------------------

    def _close_sample(self) -> None:
        """Seal sample ``self._k``: detect outliers, trigger chains."""
        s = self._k
        counts = self._cur_anchor_counts
        locs = self._cur_anchor_locs
        # scalar form of ``times_for`` — bit-identical (same expression
        # over float64), without a one-element array per tick
        analysis_t = self.analysis_model.time_for(self._cur_msg_count)
        if self.ladder is not None:
            # one rung step per closed sample, following the breakers
            self.ladder.update(self.breakers.tripped())
        flagged: Dict[int, bool] = {}
        if self._bank is not None:
            values = np.fromiter(
                (counts.get(t, 0) for t in self._anchors),
                dtype=np.float64,
                count=len(self._anchors),
            )
            result = self.breakers.guarded(
                "signals", lambda: self._bank.tick(values)
            )
            if result is not None:
                fl, _corrected = result
                for i in np.flatnonzero(fl):
                    flagged[self._anchors[i]] = True
            else:
                # the whole tick is inside one error boundary on the
                # fast path: a failure degrades every anchor for this
                # sample (the scalar loop degrades them one by one)
                for tid in self._anchors:
                    self.degraded_anchors.append(tid)
                    if (
                        self.ladder is not None
                        and self.ladder.rung == Rung.RATE_BASELINE
                    ):
                        nb = self.behaviors.get(tid)
                        if self.ladder.rate_baseline_outlier(
                            float(counts.get(tid, 0)),
                            nb.mean_rate if nb is not None else None,
                        ):
                            flagged[tid] = True
        else:
            for tid in self._anchors:
                value = float(counts.get(tid, 0))
                result = self.breakers.guarded(
                    "signals", lambda: self._detectors[tid].process(value)
                )
                if result is None:
                    self.degraded_anchors.append(tid)
                    if (
                        self.ladder is not None
                        and self.ladder.rung == Rung.RATE_BASELINE
                    ):
                        nb = self.behaviors.get(tid)
                        if self.ladder.rate_baseline_outlier(
                            value, nb.mean_rate if nb is not None else None
                        ):
                            flagged[tid] = True
                    continue
                is_outlier, _corrected = result
                if is_outlier:
                    flagged[tid] = True
        n_before = len(self._predictions)
        if flagged:
            self._trigger_chains(s, flagged, counts, locs, analysis_t)
        if self.drift_detector is not None:
            self.drift_detector.observe(
                self._cur_msg_count, self._cur_type_counts
            )
        if self.scoreboard is not None:
            for pred in self._predictions[n_before:]:
                self.scoreboard.record_prediction(pred)
            self.scoreboard.advance(
                self.t_start + (s + 1) * self.sampling_period
            )
        self._k += 1
        self._cur_msg_count = 0
        self._cur_anchor_counts = {}
        self._cur_anchor_locs = {}
        self._cur_type_counts = {}

    def _trigger_chains(
        self,
        s: int,
        flagged: Dict[int, bool],
        counts: Dict[int, int],
        locs: Dict[int, List[str]],
        analysis_t: float,
    ) -> None:
        """Identical trigger arithmetic to the batch engine, one sample."""
        cfg = self.config
        period = self.sampling_period
        t_anchor = self.t_start + s * period
        t_trigger = t_anchor + period
        t_emit = t_trigger + analysis_t
        by_anchor = self._chains_by_anchor
        if len(flagged) == 1:
            idxs = by_anchor.get(next(iter(flagged)), [])
        else:
            # merge the flagged anchors' groups back into original chain
            # order — identical iteration sequence to the full scan
            idxs = sorted(
                i for a in flagged for i in by_anchor.get(a, ())
            )
        for ci in idxs:
            chain = self.chains[ci]
            if not flagged.get(chain.anchor):
                continue
            ckey = self._chain_key(chain)
            quantiles = self.span_quantiles.get(ckey)
            if quantiles is not None:
                q_lo, q_med, q_hi = quantiles
                t_pred = t_anchor + q_med * period + period
                t_pred_lo = t_anchor + q_lo * period + period
                t_pred_hi = t_anchor + q_hi * period + period
            else:
                t_pred = t_anchor + chain.span * period + period
                t_pred_lo = t_pred_hi = None
            if t_pred - t_emit < cfg.min_visible_window or t_pred <= t_emit:
                self.n_too_late += 1
                continue
            anchor_locs = locs.get(chain.anchor, [])
            anchor_loc = anchor_locs[0] if anchor_locs else "unknown"
            skey = (ckey, anchor_loc)
            until = self._active.get(skey)
            if until is not None and t_trigger <= until:
                continue
            self._active[skey] = (
                (t_pred_hi if t_pred_hi is not None else t_pred)
                + cfg.suppression_slack
            )
            locations = self._attach_locations(chain, anchor_loc)
            pred = Prediction(
                trigger_time=t_trigger,
                emitted_at=t_emit,
                predicted_time=t_pred,
                locations=locations,
                chain_key=ckey,
                anchor_event=chain.anchor,
                fatal_event=chain.items[-1].event_type,
                source=self.source_name,
                predicted_lo=t_pred_lo,
                predicted_hi=t_pred_hi,
            )
            self._predictions.append(pred)
            self.chain_usage[pred.chain_key] += 1
            self._record_provenance(
                pred, chain, s,
                anchor_value=float(counts.get(chain.anchor, 0)),
                quantiles=quantiles, anchor_loc=anchor_loc,
            )

    # -- checkpoint serialization ---------------------------------------------

    @property
    def n_records_fed(self) -> int:
        """Records consumed so far (the resume cursor)."""
        return self._n_fed

    def state_dict(self) -> dict:
        """All mutable stream state, JSON-ready."""
        return {
            "version": STATE_VERSION,
            "n_chains": len(self.chains),
            "n_samples": self.n_samples,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "sampling_period": self.sampling_period,
            "k": self._k,
            "n_fed": self._n_fed,
            "cur": {
                "msg_count": self._cur_msg_count,
                "anchor_counts": {
                    str(t): n for t, n in self._cur_anchor_counts.items()
                },
                "anchor_locs": {
                    str(t): list(l) for t, l in self._cur_anchor_locs.items()
                },
            },
            "active": [
                [[list(item) for item in ckey], loc, until]
                for (ckey, loc), until in self._active.items()
            ],
            "chain_usage": [
                [[list(item) for item in ckey], n]
                for ckey, n in self.chain_usage.items()
            ],
            "n_too_late": self.n_too_late,
            "detectors": self._detector_states(),
            "predictions": [p.to_dict() for p in self._predictions],
        }

    def _detector_states(self) -> Dict[str, dict]:
        """Per-anchor detector states in the scalar checkpoint format.

        The bank emits the same per-detector dictionaries the scalar
        objects would, so checkpoints are interchangeable between the
        fast and legacy paths.
        """
        if self._bank is not None:
            return {
                str(t): s
                for t, s in zip(self._anchors, self._bank.state_dicts())
            }
        return {str(t): d.state_dict() for t, d in self._detectors.items()}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this instance.

        The instance must have been built from the same trained model
        and stream geometry; mismatches raise ``ValueError`` instead of
        silently resuming into a different run.
        """
        if state.get("version") != STATE_VERSION:
            raise ValueError(
                f"checkpoint version {state.get('version')!r} not supported"
            )
        for key, mine in (
            ("n_chains", len(self.chains)),
            ("n_samples", self.n_samples),
            ("t_start", self.t_start),
            ("t_end", self.t_end),
            ("sampling_period", self.sampling_period),
        ):
            if state[key] != mine:
                raise ValueError(
                    f"checkpoint mismatch: {key}={state[key]!r}, "
                    f"this run has {mine!r}"
                )
        self._k = int(state["k"])
        self._n_fed = int(state["n_fed"])
        cur = state["cur"]
        self._cur_msg_count = int(cur["msg_count"])
        self._cur_anchor_counts = {
            int(t): int(n) for t, n in cur["anchor_counts"].items()
        }
        self._cur_anchor_locs = {
            int(t): list(l) for t, l in cur["anchor_locs"].items()
        }
        self._active = {
            (tuple(tuple(item) for item in ckey), loc): float(until)
            for ckey, loc, until in state["active"]
        }
        self.chain_usage = Counter(
            {
                tuple(tuple(item) for item in ckey): int(n)
                for ckey, n in state["chain_usage"]
            }
        )
        self.n_too_late = int(state["n_too_late"])
        self._detectors = {
            int(t): restore_detector(d) for t, d in state["detectors"].items()
        }
        self._rebuild_bank()
        self._predictions = [
            Prediction.from_dict(d) for d in state["predictions"]
        ]
        self._finished = False
