"""Dynamic meta-learning over prediction methods (related work [31]).

Gu et al. "introduce the concept of dynamic meta-learning where the
prediction engine switches between different methods depending on
different rules" — the ensemble direction the paper positions itself
against.  This module implements that idea on top of the three methods
of Table III, with a twist that keeps it deployable: reliabilities are
learned **self-supervised** from the log itself.  A prediction is
*confirmed* when its predicted fatal event type actually appears in the
stream inside the prediction's acceptance window at one of its predicted
locations — no ground-truth labels needed, just watching whether the
predicted message arrives.

The meta-predictor:

1. runs every base method over the stream;
2. replays all predictions in emission order, tracking a per
   ``(method, anchor event)`` confirmation rate (Beta-prior smoothed);
3. emits a prediction only when its rule's current reliability clears
   the gate (rules start optimistic, so new rules get probation rather
   than silence);
4. dedupes across methods: concurrent predictions of the same fatal
   event at overlapping locations collapse into the most reliable one.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple


from repro.prediction.engine import Prediction, TestStream
from repro.signals.crosscorr import effective_tolerance


@dataclass
class MetaConfig:
    """Meta-learning knobs.

    ``prior_confirmed``/``prior_total`` implement the optimistic Beta
    prior (new rules start at ``prior_confirmed / prior_total``);
    ``min_reliability`` is the emission gate; ``confirm_tolerance`` is
    the ± samples used when checking whether the predicted event really
    arrived; ``dedupe_window`` merges concurrent cross-method
    predictions of the same event (seconds).
    """

    prior_confirmed: float = 1.5
    prior_total: float = 2.5
    min_reliability: float = 0.55
    confirm_tolerance: int = 3
    dedupe_window: float = 60.0


@dataclass
class RuleStats:
    """Running confirmation record of one (method, anchor) rule."""

    confirmed: int = 0
    total: int = 0

    def reliability(self, cfg: MetaConfig) -> float:
        """Beta-smoothed confirmation rate."""
        return (self.confirmed + cfg.prior_confirmed) / (
            self.total + cfg.prior_total
        )


class MetaPredictor:
    """Self-supervised ensemble over several base predictors.

    ``predictors`` maps a method name to any object with
    ``run(stream) -> List[Prediction]`` (the three Table III methods all
    qualify).  After :meth:`run`, ``rule_stats`` holds the learned
    reliabilities and ``n_suppressed`` counts gated-out predictions.
    """

    source_name = "meta"

    def __init__(
        self,
        predictors: Mapping[str, object],
        config: Optional[MetaConfig] = None,
    ) -> None:
        if not predictors:
            raise ValueError("at least one base predictor required")
        self.predictors = dict(predictors)
        self.config = config or MetaConfig()
        self.rule_stats: Dict[Tuple[str, int], RuleStats] = defaultdict(
            RuleStats
        )
        self.n_suppressed = 0

    # -- confirmation ------------------------------------------------------

    def _confirmed(self, pred: Prediction, stream: TestStream) -> bool:
        """Did the predicted fatal event arrive where predicted?"""
        index = stream.location_index
        period = stream.sampling_period
        sample = int(
            (pred.predicted_time - stream.t_start) / period
        )
        tol = max(
            self.config.confirm_tolerance,
            effective_tolerance(
                int((pred.predicted_time - pred.trigger_time) / period)
            ),
        )
        locs = index.locations_near(pred.fatal_event, sample, tol)
        if not locs:
            return False
        return bool(set(locs).intersection(pred.locations))

    # -- main ------------------------------------------------------------------

    def run(self, stream: TestStream) -> List[Prediction]:
        """Ensemble-predict over a stream.

        Base methods run first; their raw predictions are replayed in
        emission order so every gating decision uses only reliabilities
        learned from predictions that had already resolved.
        """
        cfg = self.config
        raw: List[Tuple[Prediction, str]] = []
        for name, predictor in self.predictors.items():
            for p in predictor.run(stream):
                raw.append((p, name))
        raw.sort(key=lambda item: item[0].emitted_at)

        # Every prediction updates its rule when its window closes; a
        # priority queue by window-close time keeps the replay causal.
        pending: List[Tuple[float, Prediction, str]] = []
        self.rule_stats = defaultdict(RuleStats)
        self.n_suppressed = 0
        kept: List[Prediction] = []
        recent: List[Prediction] = []  # for cross-method dedupe

        def resolve_until(t: float) -> None:
            """Settle every prediction whose window closed before t."""
            while pending and pending[0][0] <= t:
                _, p, name = pending.pop(0)
                stats = self.rule_stats[(name, p.anchor_event)]
                stats.total += 1
                if self._confirmed(p, stream):
                    stats.confirmed += 1

        for pred, name in raw:
            resolve_until(pred.emitted_at)
            stats = self.rule_stats[(name, pred.anchor_event)]
            close_at = pred.predicted_time + cfg.dedupe_window
            # enqueue for self-supervised resolution regardless of gating
            pending.append((close_at, pred, name))
            pending.sort(key=lambda item: item[0])

            if stats.reliability(cfg) < cfg.min_reliability:
                self.n_suppressed += 1
                continue
            # cross-method dedupe: same fatal event, overlapping
            # locations, overlapping window
            duplicate = False
            for other in reversed(recent):
                if pred.emitted_at - other.emitted_at > cfg.dedupe_window:
                    break
                if (
                    other.fatal_event == pred.fatal_event
                    and set(other.locations) & set(pred.locations)
                ):
                    duplicate = True
                    break
            if duplicate:
                continue
            meta_pred = Prediction(
                trigger_time=pred.trigger_time,
                emitted_at=pred.emitted_at,
                predicted_time=pred.predicted_time,
                locations=pred.locations,
                chain_key=pred.chain_key,
                anchor_event=pred.anchor_event,
                fatal_event=pred.fatal_event,
                source=f"meta:{name}",
            )
            kept.append(meta_pred)
            recent.append(meta_pred)
            if len(recent) > 256:
                del recent[:128]
        return kept

    def reliability_table(self) -> Dict[Tuple[str, int], float]:
        """Learned reliabilities after a run (rule → confirmation rate)."""
        return {
            key: stats.reliability(self.config)
            for key, stats in self.rule_stats.items()
        }
