"""Prediction scoring: precision, recall, and the paper's breakdowns.

"Precision is the fraction of failure predictions that turn out to be
correct.  Recall is the fraction of failures that are predicted."
(section VI).  A prediction is correct when a real failure lands inside
its acceptance window *and* the predicted location set covers the failure
(the location-aware scoring is what drops the hybrid's precision from
~94 % to ~91 % in the paper).

Besides Table III's headline numbers, this module computes the Fig. 9
per-category recall breakdown, the visible-prediction-window distribution
of section VI.A, and the chain-usage statistics ("3.12 % of sequences are
never used … 23.4 % are used in the majority of the cases").
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.prediction.engine import Prediction
from repro.simulation.trace import FaultEvent


@dataclass
class EvaluationConfig:
    """Matching rules.

    A prediction is *correct* (precision side) when a fault's fatal
    record lands in ``[emitted_at, predicted_time + slack]`` with
    ``slack = max(slack_seconds, rel_slack · (predicted_time −
    trigger_time))`` — the relative part mirrors the delay jitter the
    correlation tolerance already accepts — and the predicted location
    set overlaps the affected nodes (the alarm pointed at a genuinely
    failing component).

    A fault is *predicted* (recall side) only when the union of the
    locations of its correct predictions covers at least
    ``coverage_threshold`` of the affected nodes — a proactive action
    protecting one node of a ten-node failure has not avoided the
    failure.  This asymmetry is the paper's observation that "the recall
    of the prediction system will be more affected by the location
    predictor than its precision" (section V).
    """

    coverage_threshold: float = 0.5
    slack_seconds: float = 30.0
    rel_slack: float = 0.5

    def slack_for(self, prediction: Prediction) -> float:
        """Acceptance slack past the prediction's upper bound.

        Interval-valued predictions (adaptive per-chain windows) already
        carry their jitter in ``predicted_hi``, so only the fixed slack
        applies; point predictions fall back to the relative slack.
        """
        if prediction.predicted_hi is not None:
            return self.slack_seconds
        horizon = prediction.predicted_time - prediction.trigger_time
        return max(self.slack_seconds, self.rel_slack * horizon)

    def acceptance_end(self, prediction: Prediction) -> float:
        """Latest failure time the prediction claims."""
        _, hi = prediction.interval
        return hi + self.slack_for(prediction)


@dataclass
class CategoryStats:
    """Per-failure-category tallies for the Fig. 9 breakdown."""

    n_faults: int = 0
    n_predicted: int = 0

    @property
    def recall(self) -> float:
        """Fraction of this category's failures that were predicted."""
        return self.n_predicted / self.n_faults if self.n_faults else 0.0


@dataclass
class EvaluationResult:
    """Everything Table III / Fig. 9 / section VI.A report for one method."""

    n_predictions: int
    n_correct_predictions: int
    n_faults: int
    n_predicted_faults: int
    per_category: Dict[str, CategoryStats]
    visible_windows: np.ndarray
    chains_total: int
    chains_used: int
    chain_usage: Counter
    n_too_late: int

    @property
    def precision(self) -> float:
        """Correct predictions / all predictions."""
        if self.n_predictions == 0:
            return 0.0
        return self.n_correct_predictions / self.n_predictions

    @property
    def recall(self) -> float:
        """Predicted failures / all failures."""
        if self.n_faults == 0:
            return 0.0
        return self.n_predicted_faults / self.n_faults

    @property
    def chains_used_fraction(self) -> float:
        """Fraction of the correlation set that fired at least once."""
        if self.chains_total == 0:
            return 0.0
        return self.chains_used / self.chains_total

    def window_fractions(
        self, edges_seconds: Sequence[float] = (10.0, 60.0, 600.0)
    ) -> Dict[str, float]:
        """Visible-window mass per bucket (section VI.A's 85 %/50 %/6 %).

        Returns fractions of correct predictions whose visible window
        exceeds each edge, keyed ``">10s"``-style.
        """
        w = self.visible_windows
        if w.size == 0:
            return {f">{int(e)}s": 0.0 for e in edges_seconds}
        return {
            f">{int(e)}s": float((w > e).mean()) for e in edges_seconds
        }

    def summary(self) -> str:
        """One Table III row, human-readable."""
        return (
            f"precision={self.precision:.1%} recall={self.recall:.1%} "
            f"chains used={self.chains_used}/{self.chains_total} "
            f"({self.chains_used_fraction:.1%}) "
            f"predicted failures={self.n_predicted_faults}"
        )


def _coverage(pred_locs: Tuple[str, ...], fault_locs: Tuple[str, ...]) -> float:
    """Fraction of the fault's locations covered by the prediction."""
    if not fault_locs:
        return 0.0
    fault_set = set(fault_locs)
    return len(fault_set.intersection(pred_locs)) / len(fault_set)


def evaluate_predictions(
    predictions: Sequence[Prediction],
    faults: Sequence[FaultEvent],
    config: Optional[EvaluationConfig] = None,
    chains_total: Optional[int] = None,
    chain_usage: Optional[Counter] = None,
    n_too_late: int = 0,
    check_locations: bool = True,
) -> EvaluationResult:
    """Score predictions against ground-truth faults.

    ``check_locations=False`` reproduces the paper's "when running our
    method without checking the location, we obtain a precision of around
    94 %" ablation.
    """
    cfg = config or EvaluationConfig()
    faults = sorted(faults, key=lambda f: f.fail_time)
    fail_times = np.array([f.fail_time for f in faults])

    covered_locations: Dict[int, Set[str]] = defaultdict(set)
    window_of_fault: Dict[int, float] = {}
    n_correct = 0
    for pred in predictions:
        lo = int(np.searchsorted(fail_times, pred.emitted_at, side="left"))
        hi = int(
            np.searchsorted(fail_times, cfg.acceptance_end(pred), side="right")
        )
        matched = False
        for k in range(lo, hi):
            fault = faults[k]
            overlap = set(fault.locations).intersection(pred.locations)
            if check_locations and not overlap:
                continue
            matched = True
            covered_locations[fault.fault_id].update(
                overlap if check_locations else fault.locations
            )
            lead = fault.fail_time - pred.emitted_at
            prev = window_of_fault.get(fault.fault_id)
            if prev is None or lead > prev:
                window_of_fault[fault.fault_id] = lead
        if matched:
            n_correct += 1

    predicted_faults: Set[int] = set()
    per_category: Dict[str, CategoryStats] = defaultdict(CategoryStats)
    for f in faults:
        stats = per_category[f.category]
        stats.n_faults += 1
        cov = (
            len(covered_locations.get(f.fault_id, ())) / len(f.locations)
            if f.locations
            else 0.0
        )
        if cov >= cfg.coverage_threshold:
            predicted_faults.add(f.fault_id)
            stats.n_predicted += 1
    window_of_fault = {
        fid: w for fid, w in window_of_fault.items() if fid in predicted_faults
    }

    usage = chain_usage if chain_usage is not None else Counter()
    total_chains = (
        chains_total if chains_total is not None else len(usage)
    )
    return EvaluationResult(
        n_predictions=len(predictions),
        n_correct_predictions=n_correct,
        n_faults=len(faults),
        n_predicted_faults=len(predicted_faults),
        per_category=dict(per_category),
        visible_windows=np.array(sorted(window_of_fault.values())),
        chains_total=total_chains,
        chains_used=len(usage),
        chain_usage=usage if isinstance(usage, Counter) else Counter(usage),
        n_too_late=n_too_late,
    )
