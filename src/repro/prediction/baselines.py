"""The two comparison methods of Table III.

**Signal-only (prior ELSA)** — the paper's earlier purely signal-analysis
predictor: it uses the raw 2-pair cross-correlations (no GRITE pruning
into multi-event chains), which means a larger, noisier correlation set
and a much heavier online analysis ("the on-line outlier detection puts
extra stress on the analysis making the analysis window exceed 30 seconds
when the system experiences bursts").

**Data-mining-only** — fixed-window association rules in the style of
Zheng et al. [29]: for every FAILURE-severity event, the event types seen
in a fixed look-back window become rule candidates; rules are kept by
support and confidence computed over raw event *occurrences* (not
outliers).  The method "assumes faults manifest themselves in the same
way": it cannot see absence-of-message anomalies, cannot adapt its window
per event type, and attaches no propagation information — which is why
its recall collapses (15.7 % in the paper) while its precision stays high
(the surviving rules are the blatant ones).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.location.propagation import LocationPredictor
from repro.mining.correlations import CorrelationChain, GradualItem
from repro.mining.grite import GriteConfig
from repro.prediction.analysis_time import AnalysisTimeModel
from repro.prediction.engine import (
    HybridPredictor,
    Prediction,
    PredictorConfig,
    TestStream,
)
from repro.signals.characterize import NormalBehavior
from repro.simulation.trace import LogRecord, Severity


class SignalOnlyPredictor(HybridPredictor):
    """Prior-ELSA baseline: pairs only, heavier online analysis.

    Construct via :meth:`from_seed_pairs` with the raw pair correlations
    collected during GRITE seeding; every pair becomes a 2-event chain,
    so the correlation set is larger ("117" vs "62" in Table III) and the
    per-message analysis cost is an order of magnitude higher.
    """

    source_name = "signal"

    @classmethod
    def from_seed_pairs(
        cls,
        seed_pairs: Sequence[Tuple[int, int, object]],
        behaviors: Mapping[int, NormalBehavior],
        location_predictor: LocationPredictor,
        grite_config: Optional[GriteConfig] = None,
        config: Optional[PredictorConfig] = None,
        predictive_types: Optional[set] = None,
    ) -> "SignalOnlyPredictor":
        """Build from the (src, dst, PairCorrelation) seeding output.

        ``predictive_types`` optionally filters pairs whose two events are
        both non-error (the severity filter applies to this method too —
        the paper applies it to all three).
        """
        chains: List[CorrelationChain] = []
        for a, b, pc in seed_pairs:
            if a == b:
                continue
            if predictive_types is not None and (
                a not in predictive_types and b not in predictive_types
            ):
                continue
            try:
                chain = CorrelationChain(
                    items=(GradualItem(0, a), GradualItem(pc.delay, b)),
                    support=pc.n_matches,
                    confidence=pc.strength,
                )
            except ValueError:
                continue
            chains.append(chain)
        if config is None:
            # The pure signal-analysis method has no data-mining pruning
            # stage, so its online correlation set keeps lower-confidence
            # pairs — larger set, noisier triggers, slower analysis.
            config = PredictorConfig(min_chain_confidence=0.3)
        return cls(
            chains=chains,
            behaviors=behaviors,
            location_predictor=location_predictor,
            analysis_model=AnalysisTimeModel.signal_only(len(chains)),
            grite_config=grite_config,
            config=config,
        )


@dataclass(frozen=True)
class AssociationRule:
    """A fixed-window rule: precursor event → fatal event.

    ``confidence`` is P(fatal within the window | precursor occurred);
    ``median_lead`` is the observed median precursor→fatal gap, kept for
    reporting only — the online prediction window stays fixed, which is
    precisely the limitation the paper criticizes.
    """

    precursor: int
    fatal: int
    support: int
    confidence: float
    median_lead: float


@dataclass
class DataMiningConfig:
    """Fixed-window rule mining knobs (Zheng-style baseline)."""

    window_seconds: float = 45.0
    min_support: int = 3
    min_confidence: float = 0.5
    min_median_lead: float = 10.0


class DataMiningPredictor:
    """Fixed-window association-rule baseline.

    Train with :meth:`fit` on the classified training records; run with
    :meth:`run` on a :class:`TestStream`.  The interface mirrors
    :class:`HybridPredictor` so the Table III harness treats all three
    methods uniformly.
    """

    source_name = "datamining"

    def __init__(self, config: Optional[DataMiningConfig] = None) -> None:
        self.config = config or DataMiningConfig()
        self.rules: List[AssociationRule] = []
        self.analysis_model = AnalysisTimeModel.data_mining(0)
        self.chain_usage: Counter = Counter()
        self.n_too_late = 0

    # -- training -----------------------------------------------------------

    def fit(
        self,
        records: Sequence[LogRecord],
        event_ids: Sequence[Optional[int]],
        severities: Mapping[int, Severity],
    ) -> "DataMiningPredictor":
        """Mine precursor → fatal rules from the training stream.

        ``severities`` maps event-type ids to their (majority) severity;
        fatal events are those with FAILURE severity — the same signal the
        paper uses to identify failures on Blue Gene/L.
        """
        cfg = self.config
        times: Dict[int, List[float]] = defaultdict(list)
        for rec, tid in zip(records, event_ids):
            if tid is not None:
                times[tid].append(rec.timestamp)
        trains = {tid: np.asarray(ts) for tid, ts in times.items()}
        fatal_types = [
            tid for tid in trains
            if severities.get(tid, Severity.INFO) == Severity.FAILURE
        ]

        # Candidate pairs: precursor types seen in the look-back window of
        # at least one fatal occurrence.
        candidates: set = set()
        for f in fatal_types:
            for t in trains[f]:
                for p, tp in trains.items():
                    if p == f:
                        continue
                    lo = np.searchsorted(tp, t - cfg.window_seconds)
                    hi = np.searchsorted(tp, t, side="left")
                    if hi > lo:
                        candidates.add((p, f))

        rules: List[AssociationRule] = []
        for p, f in sorted(candidates):
            tp, tf = trains[p], trains[f]
            lo = np.searchsorted(tf, tp, side="right")
            hi = np.searchsorted(tf, tp + cfg.window_seconds, side="right")
            matched = hi > lo
            support = int(matched.sum())
            if support < cfg.min_support:
                continue
            confidence = support / tp.size
            if confidence < cfg.min_confidence:
                continue
            leads = tf[lo[matched]] - tp[matched]
            median_lead = float(np.median(leads)) if leads.size else 0.0
            if median_lead < cfg.min_median_lead:
                continue
            rules.append(
                AssociationRule(
                    precursor=int(p),
                    fatal=int(f),
                    support=support,
                    confidence=float(confidence),
                    median_lead=median_lead,
                )
            )
        self.rules = rules
        self.analysis_model = AnalysisTimeModel.data_mining(len(rules))
        return self

    # -- online --------------------------------------------------------------

    def run(self, stream: TestStream) -> List[Prediction]:
        """Apply the rules to a test stream.

        Each precursor occurrence predicts its fatal event within the
        fixed window, at the precursor's own location (the method carries
        no propagation model).  Re-triggering of the same (rule,
        location) is suppressed while a prediction is active.
        """
        with obs.span(
            "predict", source=self.source_name, rules=len(self.rules)
        ) as sp:
            predictions = self._run_traced(stream)
            sp["predictions"] = len(predictions)
            sp["too_late"] = self.n_too_late
        obs.counter("predictor.runs").inc()
        obs.counter("predictor.predictions_issued").inc(len(predictions))
        obs.counter("predictor.predictions_too_late").inc(self.n_too_late)
        return predictions

    def _run_traced(self, stream: TestStream) -> List[Prediction]:
        cfg = self.config
        by_precursor: Dict[int, List[AssociationRule]] = defaultdict(list)
        for r in self.rules:
            by_precursor[r.precursor].append(r)

        analysis = self.analysis_model.times_for(stream.message_counts)
        n_samples = stream.signals.n_samples
        self.chain_usage = Counter()
        self.n_too_late = 0
        active: Dict[Tuple, float] = {}
        predictions: List[Prediction] = []
        for rec, tid in zip(stream.records, stream.event_ids):
            if tid is None or tid not in by_precursor:
                continue
            s = int((rec.timestamp - stream.t_start) / stream.sampling_period)
            if not 0 <= s < n_samples:
                continue
            t_emit = rec.timestamp + float(analysis[s])
            t_pred = rec.timestamp + cfg.window_seconds
            for rule in by_precursor[tid]:
                key = (rule.precursor, rule.fatal, rec.location)
                until = active.get(key)
                if until is not None and rec.timestamp <= until:
                    continue
                if t_pred <= t_emit:
                    self.n_too_late += 1
                    continue
                active[key] = t_pred
                chain_key = ((rule.precursor, 0), (rule.fatal, -1))
                predictions.append(
                    Prediction(
                        trigger_time=rec.timestamp,
                        emitted_at=t_emit,
                        predicted_time=t_pred,
                        locations=(rec.location,),
                        chain_key=chain_key,
                        anchor_event=rule.precursor,
                        fatal_event=rule.fatal,
                        source=self.source_name,
                    )
                )
                self.chain_usage[chain_key] += 1
        predictions.sort(key=lambda p: p.emitted_at)
        return predictions
