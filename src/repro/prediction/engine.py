"""The hybrid online predictor (sections III and VI).

The online phase consumes the classified event stream sample by sample:

1. per-signal **outlier detection** with the causal moving-median filter,
   using the thresholds derived offline;
2. **chain triggering** — an outlier on a chain's anchor signal opens a
   prediction: the chain's remaining events are expected at their learned
   delays, so the failure (the chain's last event) is predicted at
   ``t_anchor + span``;
3. **location attachment** via the learned per-chain propagation profile;
4. **analysis-time accounting** — the prediction becomes *visible* only
   after the analysis window closes; predictions whose window is consumed
   entirely by analysis are dropped and counted (the paper reports the
   faults missed "because the outlier detection and prediction took too
   long").

Re-triggering is suppressed while a chain instance is active: "If the
incoming event type is already in an active correlation list, we do not
investigate it further."
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.obs.forensics import current_trace_id
from repro.obs.metrics import TIME_BUCKETS
from repro.obs.provenance import FlightRecorder, PredictionProvenance
from repro.location.propagation import LocationIndex, LocationPredictor
from repro.mining.correlations import CorrelationChain
from repro.mining.grite import GriteConfig
from repro.mining.prefix import ChainPrefixIndex
from repro.lifecycle.ladder import Rung
from repro.prediction.analysis_time import AnalysisTimeModel
from repro.resilience.breaker import ComponentBreakers
from repro.signals.characterize import NormalBehavior
from repro.signals.extraction import SignalSet, extract_signals
from repro.signals.outliers import OnlineOutlierDetector, OnlinePeriodicDetector
from repro.simulation.templates import SignalClass
from repro.simulation.trace import LogRecord


@dataclass
class TestStream:
    """The online phase's input: classified records over a time window."""

    #: not a pytest class, despite the name
    __test__ = False

    records: Sequence[LogRecord]
    event_ids: Sequence[Optional[int]]
    n_types: int
    t_start: float
    t_end: float
    sampling_period: float = 10.0

    def __post_init__(self) -> None:
        if len(self.records) != len(self.event_ids):
            raise ValueError("event_ids must parallel records")
        if self.t_end <= self.t_start:
            raise ValueError("empty stream window")
        self._signals: Optional[SignalSet] = None
        self._index: Optional[LocationIndex] = None
        self._msg_counts: Optional[np.ndarray] = None

    @property
    def signals(self) -> SignalSet:
        """Signal set of the stream (lazy, cached)."""
        if self._signals is None:
            self._signals = extract_signals(
                self.records,
                self.event_ids,
                n_types=self.n_types,
                sampling_period=self.sampling_period,
                t_start=self.t_start,
                t_end=self.t_end,
            )
        return self._signals

    @property
    def location_index(self) -> LocationIndex:
        """Per-event-type location lookup (lazy, cached)."""
        if self._index is None:
            self._index = LocationIndex(
                self.records,
                self.event_ids,
                sampling_period=self.sampling_period,
                t_start=self.t_start,
            )
        return self._index

    @property
    def message_counts(self) -> np.ndarray:
        """Raw messages per sample (drives the analysis-time model)."""
        if self._msg_counts is None:
            n = self.signals.n_samples
            idx = np.array(
                [
                    int((r.timestamp - self.t_start) / self.sampling_period)
                    for r in self.records
                ],
                dtype=np.int64,
            )
            idx = idx[(idx >= 0) & (idx < n)]
            self._msg_counts = np.bincount(idx, minlength=n)
        return self._msg_counts


@dataclass(frozen=True)
class Prediction:
    """One emitted failure prediction.

    ``trigger_time`` is the end of the observation sample;
    ``emitted_at = trigger_time + analysis_time`` is when the prediction
    becomes visible (Fig. 8); ``predicted_time`` is when the chain's last
    event is expected.  ``locations`` is the predicted affected set.

    ``predicted_lo``/``predicted_hi`` bound the adaptive prediction
    interval when the chain's training-time span distribution is known
    (per-chain windows, after the authors' SLAML'11 adaptive-window
    work); both default to ``predicted_time`` for point predictions.
    """

    trigger_time: float
    emitted_at: float
    predicted_time: float
    locations: Tuple[str, ...]
    chain_key: Tuple
    anchor_event: int
    fatal_event: int
    source: str = "hybrid"
    predicted_lo: Optional[float] = None
    predicted_hi: Optional[float] = None

    @property
    def interval(self) -> Tuple[float, float]:
        """The prediction interval (collapses to a point when unknown)."""
        lo = self.predicted_lo if self.predicted_lo is not None else self.predicted_time
        hi = self.predicted_hi if self.predicted_hi is not None else self.predicted_time
        return lo, hi

    @property
    def visible_window(self) -> float:
        """Usable seconds between visibility and the predicted failure."""
        return self.predicted_time - self.emitted_at

    @property
    def analysis_time(self) -> float:
        """Seconds spent analyzing before the prediction was visible."""
        return self.emitted_at - self.trigger_time

    def to_dict(self) -> dict:
        """JSON-ready form (CLI output files, checkpoints).

        Numpy scalars (chain delays, quantile arithmetic) are coerced to
        native types so ``json.dumps`` needs no fallback hook.
        """
        return {
            "trigger_time": float(self.trigger_time),
            "emitted_at": float(self.emitted_at),
            "predicted_time": float(self.predicted_time),
            "predicted_lo": (
                None if self.predicted_lo is None else float(self.predicted_lo)
            ),
            "predicted_hi": (
                None if self.predicted_hi is None else float(self.predicted_hi)
            ),
            "locations": list(self.locations),
            "chain_key": [
                [int(x) for x in item] for item in self.chain_key
            ],
            "anchor_event": int(self.anchor_event),
            "fatal_event": int(self.fatal_event),
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Prediction":
        """Inverse of :meth:`to_dict` (floats round-trip exactly)."""
        def _opt(key: str) -> Optional[float]:
            value = d.get(key)
            return None if value is None else float(value)

        return cls(
            trigger_time=float(d["trigger_time"]),
            emitted_at=float(d["emitted_at"]),
            predicted_time=float(d["predicted_time"]),
            locations=tuple(d["locations"]),
            chain_key=tuple(tuple(item) for item in d["chain_key"]),
            anchor_event=int(d["anchor_event"]),
            fatal_event=int(d["fatal_event"]),
            source=str(d.get("source", "hybrid")),
            predicted_lo=_opt("predicted_lo"),
            predicted_hi=_opt("predicted_hi"),
        )


@dataclass
class PredictorConfig:
    """Online-engine knobs.

    ``detector_window`` is N of the causal median filter, in samples (the
    paper uses two months; scaled scenarios use less).
    ``min_visible_window`` drops predictions whose window closed during
    analysis.  ``suppression_slack`` extends the active period of a
    triggered chain beyond its predicted time.
    """

    detector_window: int = 8640  # one day at 10 s
    detector_warmup: int = 30
    min_visible_window: float = 0.0
    suppression_slack: float = 60.0
    default_threshold: float = 0.5
    #: chains below this training confidence are not armed online — the
    #: paper's hybrid keeps "only the most frequent subset", which is why
    #: its online correlation set is small (62) and its precision high.
    min_chain_confidence: float = 0.5
    #: route outlier detection through the vectorized detector bank and
    #: the streaming predictor through the batched feed (bit-identical
    #: to the scalar path; ``--no-fast-path`` is the escape hatch).
    fast_path: bool = True


class HybridPredictor:
    """ELSA hybrid online predictor.

    Parameters
    ----------
    chains:
        Predictive correlation chains from the offline phase (already
        filtered for severity — INFO-only chains removed).
    behaviors:
        Per-event-type :class:`NormalBehavior` from training; event types
        unseen in training default to silent behaviour.
    location_predictor:
        Learned per-chain propagation profiles.
    analysis_model:
        Analysis-time cost model; defaults to the hybrid calibration.
    breakers:
        Per-component circuit breakers guarding the signal-analysis and
        location-attachment paths; defaults to a fresh set.  A component
        that throws repeatedly is tripped open and the run degrades (no
        outliers for the failing anchor / anchor-only locations) instead
        of crashing; the breaker half-opens after its cooldown.
    """

    source_name = "hybrid"

    def __init__(
        self,
        chains: Sequence[CorrelationChain],
        behaviors: Mapping[int, NormalBehavior],
        location_predictor: LocationPredictor,
        analysis_model: Optional[AnalysisTimeModel] = None,
        grite_config: Optional[GriteConfig] = None,
        config: Optional[PredictorConfig] = None,
        span_quantiles: Optional[Mapping[Tuple, Tuple[int, int, int]]] = None,
        breakers: Optional[ComponentBreakers] = None,
    ) -> None:
        self.config = config or PredictorConfig()
        self.span_quantiles = dict(span_quantiles or {})
        self.chains = [
            c
            for c in chains
            if c.confidence >= self.config.min_chain_confidence
        ]
        self.behaviors = dict(behaviors)
        self.location_predictor = location_predictor
        self.analysis_model = analysis_model or AnalysisTimeModel.hybrid(
            len(self.chains)
        )
        self.grite_config = grite_config or GriteConfig()
        self.breakers = breakers or ComponentBreakers()
        #: columnar chain-prefix view (anchor dispatch + per-chain arrays)
        self.prefix = ChainPrefixIndex(self.chains, self.span_quantiles)
        #: chain_key -> number of predictions it produced in the last run
        self.chain_usage: Counter = Counter()
        #: predictions dropped because analysis consumed their window
        self.n_too_late: int = 0
        #: anchors whose detection degraded in the last run (error boundary)
        self.degraded_anchors: List[int] = []
        #: audit records of the last emitted predictions (ring buffer)
        self.flight_recorder = FlightRecorder()
        #: optional graceful-degradation ladder (see :meth:`attach_ladder`)
        self.ladder = None

    def attach_ladder(self, ladder) -> None:
        """Drive a :class:`~repro.lifecycle.ladder.DegradationLadder`.

        The ladder follows this predictor's circuit breakers — one rung
        per update, reported through ``lifecycle.ladder_rung`` — and
        arms the bottom rung's per-type rate baseline: while on
        ``RATE_BASELINE``, an anchor whose guarded detector is
        unavailable falls back to the crude mean-rate threshold instead
        of going silent.
        """
        self.ladder = ladder

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _chain_key(chain: CorrelationChain) -> Tuple:
        return tuple((it.event_type, it.delay) for it in chain.items)

    def _threshold_for(self, event_type: int) -> float:
        nb = self.behaviors.get(event_type)
        if nb is None:
            return self.config.default_threshold
        return nb.threshold

    def _detector_meta(self, tid: int) -> Dict[str, float]:
        """The provenance description of the detector guarding ``tid``.

        Mirrors :meth:`_make_detector`'s construction exactly, so the
        audit record states the parameters the detector actually ran
        with — identical between the batch and streaming engines.
        """
        nb = self.behaviors.get(tid)
        if (
            nb is not None
            and nb.signal_class == SignalClass.PERIODIC
            and nb.period
        ):
            return {
                "kind": "periodic",
                "period": float(nb.period),
                "amplitude": float(max(nb.mean_rate * nb.period, 1.0)),
            }
        return {
            "kind": "median",
            "threshold": float(self._threshold_for(tid)),
            "window": float(self.config.detector_window),
            "warmup": float(self.config.detector_warmup),
        }

    @staticmethod
    def _window_meta(
        quantiles: Optional[Tuple[int, int, int]], chain: CorrelationChain
    ) -> Dict[str, float]:
        """Provenance for the outlier-train window that shaped the
        prediction interval: adaptive quantiles when learned, the fixed
        chain span otherwise."""
        if quantiles is not None:
            q_lo, q_med, q_hi = quantiles
            return {
                "kind": "quantile",
                "lo": float(q_lo),
                "med": float(q_med),
                "hi": float(q_hi),
            }
        return {"kind": "span", "span": float(chain.span)}

    def _record_provenance(
        self,
        pred: Prediction,
        chain: CorrelationChain,
        s: int,
        anchor_value: float,
        quantiles: Optional[Tuple[int, int, int]],
        anchor_loc: str,
    ) -> None:
        """Append the audit record for one emitted prediction."""
        self.flight_recorder.append(
            PredictionProvenance(
                source=self.source_name,
                chain=pred.chain_key,
                anchor_event=pred.anchor_event,
                fatal_event=pred.fatal_event,
                anchor_sample=int(s),
                anchor_value=float(anchor_value),
                detector=self._detector_meta(chain.anchor),
                window=self._window_meta(quantiles, chain),
                anchor_location=anchor_loc,
                locations=pred.locations,
                trigger_time=pred.trigger_time,
                emitted_at=pred.emitted_at,
                predicted_time=pred.predicted_time,
                trace_id=current_trace_id(),
            )
        )

    def _make_detector(self, tid: int):
        """The online detector for one anchor (median or periodic)."""
        nb = self.behaviors.get(tid)
        if (
            nb is not None
            and nb.signal_class == SignalClass.PERIODIC
            and nb.period
        ):
            # Absence/burst detection for beat signals — the online
            # path behind "lack of messages" failure syndromes.
            return OnlinePeriodicDetector(
                period=nb.period,
                amplitude=max(nb.mean_rate * nb.period, 1.0),
            )
        return OnlineOutlierDetector(
            threshold=self._threshold_for(tid),
            window=self.config.detector_window,
            warmup=self.config.detector_warmup,
        )

    def _detect_anchor_outliers(
        self, stream: TestStream
    ) -> Dict[int, np.ndarray]:
        """Online outlier samples for every anchor event type.

        Each anchor's scan runs inside the "signals" error boundary: a
        detector blowing up on one pathological signal costs that
        anchor's triggers, not the run.
        """
        anchors = sorted({c.anchor for c in self.chains})
        out: Dict[int, np.ndarray] = {}
        detectors = {tid: self._make_detector(tid) for tid in anchors}
        if anchors and getattr(self.config, "fast_path", True):
            from repro.signals.bank import BankLayoutError, VectorizedDetectorBank

            try:
                bank = VectorizedDetectorBank(
                    [detectors[t] for t in anchors]
                )
            except BankLayoutError:
                # foreign detector classes / desynchronized state: the
                # scalar loop below handles anything
                bank = None
            if bank is not None:
                x = np.vstack(
                    [stream.signals.signal(t) for t in anchors]
                )
                result = self.breakers.guarded(
                    "signals", lambda: bank.process_matrix(x)
                )
                if result is not None:
                    for i, tid in enumerate(anchors):
                        out[tid] = np.flatnonzero(result.flags[i])
                    return out
                # the vector attempt failed (and fed the breaker); retry
                # per anchor with fresh detectors so one pathological
                # signal degrades one anchor, not the tick
                detectors = {t: self._make_detector(t) for t in anchors}
        for tid in anchors:
            detector = detectors[tid]
            result = self.breakers.guarded(
                "signals",
                lambda: detector.process_array(stream.signals.signal(tid)),
            )
            if result is None:
                self.degraded_anchors.append(tid)
                if self.ladder is not None:
                    self.ladder.update(self.breakers.tripped())
                    if self.ladder.rung == Rung.RATE_BASELINE:
                        out[tid] = self._rate_baseline_outliers(
                            tid, stream.signals.signal(tid)
                        )
                continue
            out[tid] = result.indices
        if self.degraded_anchors:
            obs.counter("predictor.anchors_degraded").inc(
                len(self.degraded_anchors)
            )
        return out

    def _rate_baseline_outliers(
        self, tid: int, signal: np.ndarray
    ) -> np.ndarray:
        """The bottom rung's crude per-type rate threshold, vectorized."""
        nb = self.behaviors.get(tid)
        mean_rate = nb.mean_rate if nb is not None else None
        flagged = [
            s for s, value in enumerate(signal)
            if self.ladder.rate_baseline_outlier(float(value), mean_rate)
        ]
        return np.array(flagged, dtype=np.int64)

    def _attach_locations(
        self, chain: CorrelationChain, anchor_loc: str
    ) -> Tuple[str, ...]:
        """Location attachment behind the "locations" error boundary.

        When the location model is unhealthy (tripped breaker) the
        prediction still goes out, degraded to the anchor's own node —
        a late-but-somewhere prediction beats a crashed predictor.
        """
        locations = self.breakers.guarded(
            "locations",
            lambda: tuple(self.location_predictor.predict(chain, anchor_loc)),
        )
        if locations is None:
            obs.counter("predictor.locations_degraded").inc()
            return (anchor_loc,)
        return locations

    # -- main ------------------------------------------------------------------

    def run(self, stream: TestStream) -> List[Prediction]:
        """Run the online phase over a test stream; returns predictions."""
        with obs.span(
            "predict", source=self.source_name, chains=len(self.chains)
        ) as sp:
            if self.ladder is not None:
                self.ladder.update(self.breakers.tripped())
            predictions = self._run_traced(stream, sp)
            if self.ladder is not None:
                self.ladder.update(self.breakers.tripped())
                sp["ladder_rung"] = int(self.ladder.rung)
        self._record_metrics(predictions, sp.t_wall)
        return predictions

    def _run_traced(self, stream: TestStream, sp: obs.Span) -> List[Prediction]:
        cfg = self.config
        signals = stream.signals
        period = stream.sampling_period
        analysis = self.analysis_model.times_for(stream.message_counts)
        self.degraded_anchors = []
        with obs.span("outliers", mode="online") as osp:
            outliers = self._detect_anchor_outliers(stream)
            osp["anchors"] = len(outliers)
            osp["outliers"] = int(sum(len(v) for v in outliers.values()))
        index = stream.location_index

        self.chain_usage = Counter()
        self.n_too_late = 0
        active: Dict[Tuple, float] = {}
        predictions: List[Prediction] = []
        anchor_signals: Dict[int, np.ndarray] = {}

        def emit(s, chain, ckey, quantiles,
                 t_trigger, t_emit, t_pred, t_pred_lo, t_pred_hi) -> None:
            """Stateful tail of one surviving trigger (suppression,
            location attachment, provenance) — shared verbatim by the
            columnar and scalar trigger paths."""
            anchor_locs = index.locations_near(chain.anchor, s, 0)
            anchor_loc = anchor_locs[0] if anchor_locs else "unknown"

            skey = (ckey, anchor_loc)
            until = active.get(skey)
            if until is not None and t_trigger <= until:
                return
            active[skey] = (
                (t_pred_hi if t_pred_hi is not None else t_pred)
                + cfg.suppression_slack
            )

            locations = self._attach_locations(chain, anchor_loc)
            pred = Prediction(
                trigger_time=t_trigger,
                emitted_at=t_emit,
                predicted_time=t_pred,
                locations=locations,
                chain_key=ckey,
                anchor_event=chain.anchor,
                fatal_event=chain.items[-1].event_type,
                source=self.source_name,
                predicted_lo=t_pred_lo,
                predicted_hi=t_pred_hi,
            )
            predictions.append(pred)
            self.chain_usage[pred.chain_key] += 1
            if chain.anchor not in anchor_signals:
                anchor_signals[chain.anchor] = signals.signal(chain.anchor)
            self._record_provenance(
                pred, chain, s,
                anchor_value=float(anchor_signals[chain.anchor][s]),
                quantiles=quantiles, anchor_loc=anchor_loc,
            )

        if getattr(cfg, "fast_path", True):
            # columnar trigger matching: anchor dispatch, trigger
            # expansion, and all feed-forward timing (predicted times,
            # intervals, the too-late cut) happen as array ops; only
            # the surviving few enter the sequential suppression tail
            samples, chain_ids = self.prefix.expand_triggers(outliers)
            sp["triggers"] = len(samples)
            cols = self.prefix.price_triggers(
                samples, chain_ids, signals.t_start, analysis, period,
                cfg.min_visible_window,
            )
            late = cols["too_late"]
            self.n_too_late = int(late.sum())
            hq = cols["has_quantiles"]
            for i in np.flatnonzero(~late).tolist():
                s = int(samples[i])
                ci = int(chain_ids[i])
                ckey = self.prefix.keys[ci]
                emit(
                    s, self.chains[ci], ckey,
                    self.span_quantiles.get(ckey),
                    float(cols["t_trigger"][i]),
                    float(cols["t_emit"][i]),
                    float(cols["t_pred"][i]),
                    float(cols["t_pred_lo"][i]) if hq[i] else None,
                    float(cols["t_pred_hi"][i]) if hq[i] else None,
                )
        else:
            # scalar reference: process triggers in time order across
            # all chains, pricing each one at a time
            triggers: List[Tuple[int, CorrelationChain]] = []
            for chain in self.chains:
                for s in outliers.get(chain.anchor, ()):  # sample indices
                    triggers.append((int(s), chain))
            triggers.sort(key=lambda t: t[0])
            sp["triggers"] = len(triggers)

            for s, chain in triggers:
                t_trigger = signals.sample_time(s) + period  # sample closes
                t_emit = t_trigger + float(analysis[s])
                t_anchor = signals.sample_time(s)
                ckey = self._chain_key(chain)
                quantiles = self.span_quantiles.get(ckey)
                if quantiles is not None:
                    q_lo, q_med, q_hi = quantiles
                    t_pred = t_anchor + q_med * period + period
                    t_pred_lo = t_anchor + q_lo * period + period
                    t_pred_hi = t_anchor + q_hi * period + period
                else:
                    t_pred = t_anchor + chain.span * period + period
                    t_pred_lo = t_pred_hi = None
                if (
                    t_pred - t_emit < cfg.min_visible_window
                    or t_pred <= t_emit
                ):
                    self.n_too_late += 1
                    continue
                emit(
                    s, chain, ckey, quantiles,
                    t_trigger, t_emit, t_pred, t_pred_lo, t_pred_hi,
                )

        predictions.sort(key=lambda p: p.emitted_at)
        sp["predictions"] = len(predictions)
        sp["too_late"] = self.n_too_late
        return predictions

    def _record_metrics(
        self, predictions: List[Prediction], wall_seconds: float
    ) -> None:
        """Domain metrics for one online run.

        The analysis-time histogram holds the *modeled* per-prediction
        cost (section VI.A's linear model); ``run_wall_seconds`` and the
        ratio gauge hold the *observed* cost of this implementation, so
        the dump cross-checks the model against reality.
        """
        obs.counter("predictor.runs").inc()
        obs.counter("predictor.predictions_issued").inc(len(predictions))
        obs.counter("predictor.predictions_too_late").inc(self.n_too_late)
        obs.histogram(
            "predictor.analysis_time_seconds", buckets=TIME_BUCKETS
        ).observe_many([p.analysis_time for p in predictions])
        obs.histogram(
            "predictor.run_wall_seconds", buckets=TIME_BUCKETS
        ).observe(wall_seconds)
        modeled = sum(p.analysis_time for p in predictions)
        if modeled > 0:
            obs.gauge("predictor.analysis_model_wall_ratio").set(
                wall_seconds / modeled
            )
