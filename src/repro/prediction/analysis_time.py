"""Analysis-window cost model (section VI.A).

"The analysis time represents the overhead of our method in making a
prediction: the execution time for detecting the outlier, triggering a
correlation sequence, and finding the corresponding locations."  The
prediction window opens only *after* this analysis, so a slow analyzer
eats the head of every window and misses short-lead failures entirely —
the paper reports the signal-only method exceeding 30 seconds during
bursts for exactly this reason.

The model is linear in the message volume of the observation window plus
a per-correlation bookkeeping term:

    t_analysis = base + per_message · n_messages + per_chain · n_chains

Calibration to the paper's measurements for the hybrid method
(~5 msg/s → negligible; ~100 msg/s bursts → ~2.5 s; worst case 8.43 s
during an NFS storm) gives ``per_message ≈ 2.5 ms``.  The baselines scale
the coefficients: signal-only pays heavily per message (on-line outlier
detection over a larger, unpruned correlation set), data-mining is cheap
per message but blind to most correlations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AnalysisTimeModel:
    """Linear analysis-time model.

    ``n_chains`` is the size of the active correlation set (fixed after
    training); the per-chain term models the chain-matching sweep.
    """

    base: float = 0.01
    per_message: float = 0.0025
    per_chain: float = 0.002
    n_chains: int = 0

    def time_for(self, n_messages: int) -> float:
        """Analysis seconds for a window holding ``n_messages``."""
        if n_messages < 0:
            raise ValueError("n_messages must be >= 0")
        return self.base + self.per_message * n_messages + self.per_chain * self.n_chains

    def times_for(self, message_counts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`time_for` over per-window message counts."""
        counts = np.asarray(message_counts, dtype=np.float64)
        if (counts < 0).any():
            raise ValueError("message counts must be >= 0")
        return self.base + self.per_message * counts + self.per_chain * self.n_chains

    @classmethod
    def hybrid(cls, n_chains: int) -> "AnalysisTimeModel":
        """The paper's hybrid method: pruned chain set, fast matching."""
        return cls(base=0.01, per_message=0.0025, per_chain=0.002, n_chains=n_chains)

    @classmethod
    def signal_only(cls, n_chains: int) -> "AnalysisTimeModel":
        """Prior ELSA: on-line outlier detection over a larger pair set.

        The paper: "the on-line outlier detection puts extra stress on
        the analysis making the analysis window exceed 30 seconds when
        the system experiences bursts."
        """
        return cls(base=0.05, per_message=0.03, per_chain=0.01, n_chains=n_chains)

    @classmethod
    def data_mining(cls, n_chains: int) -> "AnalysisTimeModel":
        """Pure association rules: small correlation set, light matching."""
        return cls(base=0.01, per_message=0.002, per_chain=0.002, n_chains=n_chains)
