"""Online failure prediction and its evaluation (section VI).

* :mod:`repro.prediction.analysis_time` — cost model of the online
  analysis window (outlier detection + chain matching), calibrated to the
  paper's measurements (negligible at ~5 msg/s, ~2.5 s at ~100 msg/s,
  worst case 8.43 s);
* :mod:`repro.prediction.engine` — the hybrid online predictor: outlier
  detection on anchor signals, chain triggering, location attachment,
  prediction windows;
* :mod:`repro.prediction.baselines` — the two comparison methods of
  Table III: pure signal analysis (prior ELSA) and pure data mining
  (fixed-window association rules à la Zheng et al.);
* :mod:`repro.prediction.evaluation` — precision/recall scoring against
  ground truth with location coverage, the Fig. 9 category breakdown and
  the section-VI window statistics.
"""

from repro.prediction.analysis_time import AnalysisTimeModel
from repro.prediction.engine import (
    HybridPredictor,
    Prediction,
    PredictorConfig,
    TestStream,
)
from repro.prediction.baselines import (
    AssociationRule,
    DataMiningPredictor,
    SignalOnlyPredictor,
)
from repro.prediction.evaluation import (
    EvaluationConfig,
    EvaluationResult,
    evaluate_predictions,
)
from repro.prediction.metalearn import MetaConfig, MetaPredictor
from repro.prediction.scoreboard import DriftDetector, OnlineScoreboard

__all__ = [
    "DriftDetector",
    "OnlineScoreboard",
    "AnalysisTimeModel",
    "Prediction",
    "PredictorConfig",
    "TestStream",
    "HybridPredictor",
    "SignalOnlyPredictor",
    "DataMiningPredictor",
    "AssociationRule",
    "EvaluationConfig",
    "EvaluationResult",
    "evaluate_predictions",
    "MetaConfig",
    "MetaPredictor",
]
