"""Rolling online self-evaluation of a streaming predictor.

Offline, :func:`repro.prediction.evaluation.evaluate_predictions` scores
a finished run.  Online-fault-classification practice (Netti et al.,
arXiv:1810.11208) instead evaluates the predictor *continuously* as
ground truth arrives: every fault that lands in the stream is matched
against the predictions already emitted, every prediction is resolved
once its acceptance window closes, and sliding-window precision/recall
gauges tell the operator whether the model is still earning its keep.

:class:`OnlineScoreboard` implements exactly the offline matching rules
(same :class:`~repro.prediction.evaluation.EvaluationConfig` slack and
location-coverage logic), incrementally:

* a *fault* is resolvable the moment it arrives — only predictions with
  ``emitted_at <= fail_time`` can ever claim it, and those are all in
  the past by then;
* a *prediction* is resolvable once the stream clock passes its
  acceptance window's end — no future fault can redeem it.

Because the rules match, the scoreboard's cumulative precision/recall
over a fully replayed trace equal the offline
:class:`~repro.prediction.evaluation.EvaluationResult` exactly (the
property ``tests/test_scoreboard.py`` enforces).

:class:`DriftDetector` watches the live signal mix and message-arrival
rate against the fitted model's expectations — the paper's motivation
for adaptive re-characterization — and raises an ``obs`` warning plus
the ``scoreboard.drift_alert`` gauge when the stream no longer looks
like the training data.
"""

from __future__ import annotations

import math
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.prediction.engine import Prediction
from repro.prediction.evaluation import EvaluationConfig
from repro.simulation.trace import FaultEvent

__all__ = ["DriftDetector", "OnlineScoreboard", "LEAD_TIME_BUCKETS"]

log = obs.get_logger(__name__)

#: lead times run seconds-to-hours, unlike the analysis-time range
LEAD_TIME_BUCKETS: Tuple[float, ...] = (
    10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0, 7200.0, 21600.0,
)


class OnlineScoreboard:
    """Match emitted predictions against in-stream ground truth.

    Parameters
    ----------
    faults:
        Known ground-truth faults (a replayed trace); they are consumed
        as the stream clock passes their ``fail_time``.  More can arrive
        later via :meth:`add_fault` (a live deployment confirming
        failures after the fact).
    config:
        The offline matching rules; defaults match
        :func:`evaluate_predictions`.
    window_seconds:
        Width of the sliding window behind the ``scoreboard.window_*``
        gauges (default six hours).
    """

    def __init__(
        self,
        faults: Sequence[FaultEvent] = (),
        config: Optional[EvaluationConfig] = None,
        window_seconds: float = 21600.0,
    ) -> None:
        self.config = config or EvaluationConfig()
        self.window_seconds = float(window_seconds)
        self._pending_faults: List[FaultEvent] = sorted(
            faults, key=lambda f: f.fail_time
        )
        self._fault_ptr = 0
        self._preds: List[Prediction] = []
        self._unresolved: List[Prediction] = []
        self._matched: Set[int] = set()  # id(pred) of correct predictions
        #: (resolve_time, correct) per resolved prediction, time order
        self._resolved: Deque[Tuple[float, bool]] = deque()
        #: (fail_time, predicted, lead|None) per arrived fault
        self._fault_results: Deque[Tuple[float, bool, Optional[float]]] = (
            deque()
        )
        self.now = float("-inf")
        # cumulative tallies (the offline-equality side)
        self.n_predictions = 0
        self.n_correct = 0
        self.n_faults = 0
        self.n_predicted_faults = 0
        self._lead_hist = obs.histogram(
            "scoreboard.lead_time_seconds", buckets=LEAD_TIME_BUCKETS
        )

    # -- feeding ------------------------------------------------------------

    def record_prediction(self, prediction: Prediction) -> None:
        """A prediction was just emitted by the streaming engine."""
        self._preds.append(prediction)
        self._unresolved.append(prediction)
        self.n_predictions += 1
        obs.counter("scoreboard.predictions").inc()

    def add_fault(self, fault: FaultEvent) -> None:
        """Ground truth learned after construction (confirmed failure)."""
        if fault.fail_time < self.now:
            raise ValueError(
                f"fault at {fault.fail_time} is behind the stream clock "
                f"{self.now}"
            )
        self._pending_faults.append(fault)
        self._pending_faults.sort(key=lambda f: f.fail_time)
        # the consumed prefix stays consumed; re-sync the pointer
        self._fault_ptr = sum(
            1 for f in self._pending_faults if f.fail_time < self.now
        )

    # -- the clock ----------------------------------------------------------

    def advance(self, now: float) -> None:
        """Move the stream clock forward; resolve what it passed."""
        if now < self.now:
            return
        self.now = now
        while self._fault_ptr < len(self._pending_faults):
            fault = self._pending_faults[self._fault_ptr]
            if fault.fail_time > now:
                break
            self._resolve_fault(fault)
            self._fault_ptr += 1
        still_open: List[Prediction] = []
        for pred in self._unresolved:
            if self.config.acceptance_end(pred) < now:
                self._resolve_prediction(pred)
            else:
                still_open.append(pred)
        self._unresolved = still_open
        self._trim_window()
        self._publish()

    def finalize(self) -> None:
        """End of stream: resolve every still-open prediction.

        No further ground truth can arrive, so an open acceptance
        window settles with the matches it has — the same verdict the
        offline evaluation reaches.
        """
        for pred in self._unresolved:
            self._resolve_prediction(pred)
        self._unresolved = []
        self._trim_window()
        self._publish()

    # -- matching (identical rules to evaluate_predictions) -----------------

    def _resolve_fault(self, fault: FaultEvent) -> None:
        self.n_faults += 1
        obs.counter("scoreboard.faults_seen").inc()
        covered: Set[str] = set()
        lead: Optional[float] = None
        fault_locs = set(fault.locations)
        for pred in self._preds:
            if not (pred.emitted_at
                    <= fault.fail_time
                    <= self.config.acceptance_end(pred)):
                continue
            overlap = fault_locs.intersection(pred.locations)
            if not overlap:
                continue
            self._matched.add(id(pred))
            covered.update(overlap)
            this_lead = fault.fail_time - pred.emitted_at
            if lead is None or this_lead > lead:
                lead = this_lead
        coverage = (
            len(covered) / len(fault.locations) if fault.locations else 0.0
        )
        predicted = coverage >= self.config.coverage_threshold
        if predicted:
            self.n_predicted_faults += 1
            obs.counter("scoreboard.faults_predicted").inc()
            if lead is not None:
                self._lead_hist.observe(lead)
        else:
            lead = None
            log.info(
                "fault missed by the live predictor",
                extra=obs.logging.kv(
                    fault_id=fault.fault_id,
                    category=fault.category,
                    coverage=round(coverage, 3),
                ),
            )
        self._fault_results.append((fault.fail_time, predicted, lead))

    def _resolve_prediction(self, pred: Prediction) -> None:
        correct = id(pred) in self._matched
        if correct:
            self.n_correct += 1
            obs.counter("scoreboard.predictions_correct").inc()
        obs.counter("scoreboard.predictions_resolved").inc()
        self._resolved.append((self.config.acceptance_end(pred), correct))

    def _trim_window(self) -> None:
        horizon = self.now - self.window_seconds
        while self._resolved and self._resolved[0][0] < horizon:
            self._resolved.popleft()
        while self._fault_results and self._fault_results[0][0] < horizon:
            self._fault_results.popleft()

    # -- outputs ------------------------------------------------------------

    @property
    def precision(self) -> float:
        """Cumulative precision over resolved predictions."""
        resolved = self.n_predictions - len(self._unresolved)
        return self.n_correct / resolved if resolved else 0.0

    @property
    def recall(self) -> float:
        """Cumulative recall over arrived faults."""
        return self.n_predicted_faults / self.n_faults if self.n_faults else 0.0

    @property
    def window_precision(self) -> float:
        """Precision over the sliding window."""
        if not self._resolved:
            return 0.0
        return sum(1 for _, ok in self._resolved if ok) / len(self._resolved)

    @property
    def window_recall(self) -> float:
        """Recall over the sliding window."""
        if not self._fault_results:
            return 0.0
        hit = sum(1 for _, ok, _ in self._fault_results if ok)
        return hit / len(self._fault_results)

    @property
    def window_fault_count(self) -> int:
        """Faults currently inside the sliding window."""
        return len(self._fault_results)

    def _publish(self) -> None:
        obs.gauge("scoreboard.precision").set(self.precision)
        obs.gauge("scoreboard.recall").set(self.recall)
        obs.gauge("scoreboard.window_precision").set(self.window_precision)
        obs.gauge("scoreboard.window_recall").set(self.window_recall)
        obs.gauge("scoreboard.window_predictions").set(len(self._resolved))
        obs.gauge("scoreboard.window_faults").set(len(self._fault_results))

    def snapshot(self) -> dict:
        """Current scoreboard as one JSON-ready dict."""
        return {
            "now": self.now,
            "predictions": self.n_predictions,
            "predictions_unresolved": len(self._unresolved),
            "predictions_correct": self.n_correct,
            "faults_seen": self.n_faults,
            "faults_predicted": self.n_predicted_faults,
            "precision": self.precision,
            "recall": self.recall,
            "window_precision": self.window_precision,
            "window_recall": self.window_recall,
        }

    def summary(self) -> str:
        """One status line for the console."""
        return (
            f"scoreboard: precision={self.precision:.1%} "
            f"recall={self.recall:.1%} "
            f"({self.n_correct}/{self.n_predictions - len(self._unresolved)} "
            f"correct, {self.n_predicted_faults}/{self.n_faults} faults "
            f"predicted, window p={self.window_precision:.1%} "
            f"r={self.window_recall:.1%})"
        )


class DriftDetector:
    """Flag divergence between the live stream and the fitted model.

    Three signals, all cheap enough for per-sample updates:

    * **arrival rate** — a fast EWMA of messages per sample against
      the training-time expectation (template-arrival rate drift);
    * **tracked rate** — hits on the tracked (stable) event types;
      catches known traffic going silent or being replaced by novel
      templates while total volume looks normal;
    * **signal mix** — the relative shares of the tracked types
      (signal-class mix drift).  Smoothing the *counts* rather than
      per-sample shares keeps the estimate stable for sparse types.

    The fitted model supplies the total-rate expectation and selects
    the tracked set — the types whose training occupancy clears a
    floor (bursty fault-driven types, e.g. the chain anchors, have
    train-window rates that do not predict any particular test window,
    so judging drift on them would flag ordinary replay).  The
    tracked-rate and mix signals use a fast-vs-slow dual-EWMA scheme:
    a fast tracker (``alpha``) is compared against a slowly adapting
    baseline (``slow_alpha``).  Abrupt shifts open a wide fast/slow
    gap and alert at the transition; the baseline then follows, so the
    alert marks the change episode rather than latching forever.

    Expect alert episodes during the first hours of a fresh stream:
    the online template classifier does not map messages to exactly
    the same ids as the offline fit and converges over that period, a
    genuine (and self-resolving) mix change.  Once the stream is
    established, nominal replay stays well under the threshold.

    The drift score is the worst of the divergences: absolute
    log-ratios for the two rates (symmetric in floods and silences)
    and the L1 distance between the fast and baseline mixes (a
    completely displaced mix scores 2.0).  Past ``threshold`` (after
    ``warmup`` samples, during which the baseline also tracks fast so
    it starts from live data rather than the fitted init) a warning is
    logged, the ``scoreboard.drift_alert`` gauge goes to 1 and
    ``scoreboard.drift_alerts`` counts the episode — the cue that the
    paper's adaptive re-characterization should re-fit.  An optional
    ``on_drift`` callback fires once per episode (at the rising edge)
    with the detector itself; the self-healing lifecycle loop hangs its
    retrain trigger on it.  The default
    threshold of 0.9 fires when a rate is off ~2.5× or most of the
    tracked mix has moved; ordinary test-window jitter (including the
    injected fault bursts) scores well below it.
    """

    def __init__(
        self,
        expected_rate: float,
        expected_mix: Mapping[int, float],
        alpha: float = 0.05,
        threshold: float = 0.9,
        warmup: int = 64,
        expected_tracked_rate: Optional[float] = None,
        slow_alpha: Optional[float] = None,
        on_drift: Optional[Callable[["DriftDetector"], None]] = None,
        lag_check_interval: int = 256,
        lag_window: int = 512,
        lag_max_lag: int = 64,
    ) -> None:
        if expected_rate <= 0:
            raise ValueError("expected_rate must be positive")
        self.expected_rate = float(expected_rate)
        total = sum(expected_mix.values())
        self.expected_mix: Dict[int, float] = (
            {t: v / total for t, v in expected_mix.items()} if total
            else dict(expected_mix)
        )
        self.alpha = float(alpha)
        self.slow_alpha = (
            float(slow_alpha) if slow_alpha is not None else self.alpha / 50.0
        )
        self.threshold = float(threshold)
        self.warmup = int(warmup)
        self.expected_tracked_rate = (
            float(expected_tracked_rate)
            if expected_tracked_rate is not None else None
        )
        self._rate_ewma = self.expected_rate
        base = self.expected_tracked_rate or 1.0
        self._count_fast: Dict[int, float] = {
            t: v * base for t, v in self.expected_mix.items()
        }
        self._count_slow: Dict[int, float] = dict(self._count_fast)
        self._tracked_fast = self.expected_tracked_rate
        self._tracked_slow = self.expected_tracked_rate
        self._seen = 0
        self.score = 0.0
        self.alerted = False
        #: rising-edge count, mirroring the ``scoreboard.drift_alerts``
        #: counter (an episode = one contiguous over-threshold stretch)
        self.alert_episodes = 0
        #: optional rising-edge hook: called once per alert episode with
        #: this detector; the lifecycle loop's retrain trigger.  Settable
        #: after construction; exceptions are swallowed (a broken hook
        #: must not take the prediction loop down with it).
        self.on_drift = on_drift
        # -- advisory lag-correlation check ------------------------------
        # Every ``lag_check_interval`` samples the recent arrival-rate
        # history is lag-correlated against a frozen early-stream
        # baseline window; a strong off-zero lag suggests the stream is
        # a time-shifted replay of its own past (periodic load shifts),
        # a weak best correlation that the rhythm itself changed.  The
        # baseline's centered/scaled form and FFT are computed once and
        # cached (:class:`~repro.signals.crosscorr.CachedCorrelator`),
        # so a check costs one FFT of the query window instead of an
        # O(lags·n) Python loop per tick.  Purely advisory: reported via
        # the ``scoreboard.drift_lag*`` gauges and the log, never folded
        # into :attr:`score` (0 disables).
        self.lag_check_interval = int(lag_check_interval)
        self.lag_window = int(lag_window)
        self.lag_max_lag = int(lag_max_lag)
        self._history: Deque[float] = deque(maxlen=max(self.lag_window, 1))
        self._correlator = None
        #: last advisory check's ``(lag, correlation)`` (None = not yet run)
        self.lag_corr: Optional[Tuple[int, float]] = None

    @classmethod
    def from_behaviors(
        cls,
        behaviors: Mapping[int, "object"],
        anchors: Sequence[int] = (),
        min_occupancy: float = 0.05,
        **kwargs,
    ) -> "DriftDetector":
        """Baseline from the offline characterization.

        ``mean_rate`` is per-sample, so the expected stream rate is the
        sum over every characterized event type; the tracked mix covers
        the types whose training occupancy is at least
        ``min_occupancy`` (the stable background — see the class note
        on why bursty anchors are excluded).  ``anchors`` is only the
        last-resort mix when nothing clears the floor.
        """
        rate = sum(
            max(getattr(nb, "mean_rate", 0.0), 0.0)
            for nb in behaviors.values()
        )
        mix = {
            tid: max(getattr(nb, "mean_rate", 0.0), 0.0)
            for tid, nb in behaviors.items()
            if getattr(nb, "occupancy", 0.0) >= min_occupancy
        }
        mix = {t: v for t, v in mix.items() if v > 0}
        tracked_rate: Optional[float] = sum(mix.values())
        if not mix:
            mix = {tid: 1.0 for tid in anchors} or {0: 1.0}
            tracked_rate = None
        return cls(
            expected_rate=max(rate, 1e-9),
            expected_mix=mix,
            expected_tracked_rate=tracked_rate,
            **kwargs,
        )

    @staticmethod
    def _log_ratio(live: float, expected: float) -> float:
        """|log(live/expected)|, floored so a dead stream stays finite."""
        floor = 1e-3 * expected
        return abs(math.log(max(live, floor) / expected))

    def observe(self, msg_count: float, type_counts: Mapping[int, int]) -> None:
        """One closed sample: total messages + per-event-type counts.

        ``type_counts`` may cover every event type of the sample or any
        superset of the tracked types; untracked keys are ignored.
        """
        a = self.alpha
        self._seen += 1
        if self.lag_check_interval > 0:
            self._observe_lag(float(msg_count))
        # during warmup the baseline tracks at full speed so both EWMAs
        # start from live data rather than the fitted initialization
        a_slow = a if self._seen <= self.warmup else self.slow_alpha
        self._rate_ewma += a * (float(msg_count) - self._rate_ewma)
        hits = 0.0
        for tid in self._count_fast:
            c = float(type_counts.get(tid, 0))
            hits += c
            self._count_fast[tid] += a * (c - self._count_fast[tid])
            self._count_slow[tid] += a_slow * (c - self._count_slow[tid])
        if self._tracked_fast is not None:
            self._tracked_fast += a * (hits - self._tracked_fast)
            self._tracked_slow += a_slow * (hits - self._tracked_slow)
        if self._seen <= self.warmup:
            return
        rate_drift = self._log_ratio(self._rate_ewma, self.expected_rate)
        tracked_drift = 0.0
        if self._tracked_fast is not None and self._tracked_slow > 0:
            tracked_drift = self._log_ratio(
                self._tracked_fast, self._tracked_slow
            )
        slow_total = sum(self._count_slow.values())
        mix_drift = 0.0
        if slow_total > 0:
            # absolute per-type change relative to baseline traffic:
            # tiny types cannot dominate the way share-space L1 lets
            # them, and a fully displaced mix still scores 2.0
            mix_drift = sum(
                abs(self._count_fast[t] - self._count_slow[t])
                for t in self._count_fast
            ) / slow_total
        self.score = max(rate_drift, tracked_drift, mix_drift)
        obs.gauge("scoreboard.drift_score").set(self.score)
        alert = self.score > self.threshold
        obs.gauge("scoreboard.drift_alert").set(1.0 if alert else 0.0)
        if alert and not self.alerted:
            self.alert_episodes += 1
            obs.counter("scoreboard.drift_alerts").inc()
            log.warning(
                "live stream drifting from the fitted model",
                extra=obs.logging.kv(
                    score=round(self.score, 3),
                    rate_ewma=round(self._rate_ewma, 2),
                    expected_rate=round(self.expected_rate, 2),
                ),
            )
            if self.on_drift is not None:
                try:
                    self.on_drift(self)
                except Exception:
                    log.warning(
                        "on_drift callback failed",
                        extra=obs.logging.kv(score=round(self.score, 3)),
                        exc_info=True,
                    )
        self.alerted = alert

    def _observe_lag(self, msg_count: float) -> None:
        """Advisory lag correlation of the rate history (see ``__init__``)."""
        self._history.append(msg_count)
        if len(self._history) < self.lag_window:
            return
        if self._correlator is None:
            from repro.signals.crosscorr import CachedCorrelator

            # freeze the first full window as the baseline epoch; its
            # centered/scaled form is cached across all later checks
            try:
                self._correlator = CachedCorrelator(
                    list(self._history),
                    min(self.lag_max_lag, self.lag_window - 1),
                )
            except ValueError:
                self.lag_check_interval = 0
                return
        if self._seen % self.lag_check_interval:
            return
        lag, corr = self._correlator.best(list(self._history))
        self.lag_corr = (lag, corr)
        obs.gauge("scoreboard.drift_lag_corr").set(corr)
        obs.gauge("scoreboard.drift_lag").set(float(lag))
        log.debug(
            "advisory lag-correlation drift check",
            extra=obs.logging.kv(lag=lag, corr=round(corr, 3)),
        )
